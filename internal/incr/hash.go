// Component content hashing. A memo entry's key is the chained digest
//
//	key(c, run k) = H(chain_{k-1}(c) ∥ inputHash_k(c))
//	chain_0(c)    = structHash(c)
//	chain_k(c)    = key(c, run k)
//
// so a key pins down (a) the component's complete internal structure, (b)
// the inputs of every previous run — and therefore, by induction over the
// deterministic sequential schedule, the component's entire internal state —
// and (c) the current run's inputs. Two occurrences of the same key denote
// identical runs, which is what makes replaying the recorded transcript
// exact, and also what makes the table content-addressed: structurally
// identical components at equal points of their input history share entries.
//
// The structure hash covers everything the component's internal execution
// can observe: the per-node commands (stable-rendered), the callee
// signatures at call/return-bind points (callee order matters — formals bind
// against the accumulating memory), the summary-ness of every D̂/Û member
// (which encodes the call-graph-cycle facts the transfer functions consult),
// the internal dependency edges, the internal-vs-external shape of control
// successors, the widening-point flags, and the dense worklist-priority
// ranks that fix the intra-component schedule. External edges are excluded
// deliberately: where outputs land does not affect how the component itself
// runs, and replay re-emits external effects against the current graph.
package incr

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
	"strconv"

	"sparrow/internal/dug"
	"sparrow/internal/ir"
	"sparrow/internal/prean"
	"sparrow/internal/sem"
)

// HashParts digests a canonical string sequence (NUL-terminated parts, so
// part boundaries cannot alias).
func HashParts(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ChainNext advances a component's hash chain by one run.
func ChainNext(prev, inputHash string) string { return HashParts(prev, inputHash) }

// hasher feeds NUL-terminated parts into one digest.
type hasher struct{ h io.Writer }

func (w hasher) str(s string) {
	io.WriteString(w.h, s)
	w.h.Write([]byte{0})
}

func (w hasher) num(n int) { w.str(strconv.Itoa(n)) }

func (w hasher) flag(b bool) {
	if b {
		w.str("1")
	} else {
		w.str("0")
	}
}

// StructHashes computes the per-component structure hashes of the sparse
// scheduling graph. The hash is a pure function of version-portable content:
// it is bit-identical across worker counts, map iteration orders, and — for
// an unedited component — across program versions whose edits only shift the
// dense IDs around it.
func StructHashes(prog *ir.Program, pre *prean.Result, g *dug.Graph, namer *ir.StableNamer) []string {
	p := g.Partition()
	s := &sem.Sem{Prog: prog, Callees: pre.CalleesOf, InCycle: pre.CG.InCycle}
	out := make([]string, p.NumComps())
	for c := range out {
		nodes := p.Nodes[c]
		h := sha256.New()
		w := hasher{h: h}
		ranks := prioRanks(g, nodes)
		for li, n := range nodes {
			w.num(li)
			if g.IsPhi(n) {
				phi := g.PhiOf(n)
				w.str("phi")
				w.str(namer.LocKey(phi.Loc))
			} else {
				pt := prog.Point(ir.PointID(n))
				w.str("pt")
				w.str(namer.CmdKey(pt.Cmd))
				hashCallees(w, prog, pre, namer, pt)
				hashCtrlSuccs(w, prog, pre, p, int32(c), pt)
			}
			w.str("defs")
			for _, l := range g.Defs[n] {
				w.str(namer.LocKey(l))
				w.flag(s.IsSummaryLoc(l))
			}
			w.str("uses")
			for _, l := range g.Uses[n] {
				w.str(namer.LocKey(l))
				w.flag(s.IsSummaryLoc(l))
			}
			w.flag(g.Widen[n])
			w.num(ranks[li])
		}
		// Internal dependency edges, by (local source, location, local
		// target) in the graph's canonical order.
		w.str("deps")
		for _, n := range nodes {
			cur := g.Out(n)
			for _, l := range g.Defs[n] {
				for _, t := range cur.Seek(l) {
					if p.Comp[t] == int32(c) {
						w.num(int(p.LocalIdx[n]))
						w.str(namer.LocKey(l))
						w.num(int(p.LocalIdx[t]))
					}
				}
			}
		}
		out[c] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// hashCallees digests the resolved callee signatures at call and return-bind
// points: the ordered callee names (BindFormals folds callees in this order
// over the accumulating memory), each callee's recursion bit (it decides the
// summary-ness of its formals, locals and return channel), its formal list,
// and its return location.
func hashCallees(w hasher, prog *ir.Program, pre *prean.Result, namer *ir.StableNamer, pt *ir.Point) {
	var callees []ir.ProcID
	switch cmd := pt.Cmd.(type) {
	case ir.Call:
		callees = pre.CalleesOf(pt.ID)
	case ir.RetBind:
		callees = pre.CalleesOf(cmd.CallPt)
	default:
		return
	}
	w.str("callees")
	for _, cp := range callees {
		pr := prog.ProcByID(cp)
		w.str(pr.Name)
		w.flag(pre.CG.InCycle(cp))
		for _, f := range pr.Formals {
			w.str(namer.LocKey(f))
		}
		if pr.RetLoc != ir.None {
			w.str(namer.LocKey(pr.RetLoc))
		} else {
			w.str("-")
		}
	}
}

// hashCtrlSuccs digests the shape of a point's control successors under the
// solver's reach-propagation rules: internal targets by local index,
// external ones collapsed to a marker (their identity is recomputed at
// replay, not replayed from the record).
func hashCtrlSuccs(w hasher, prog *ir.Program, pre *prean.Result, p *dug.Partition, c int32, pt *ir.Point) {
	w.str("succs")
	emit := func(t ir.PointID) {
		if p.Comp[t] == c {
			w.num(int(p.LocalIdx[t]))
		} else {
			w.str("ext")
		}
	}
	switch pt.Cmd.(type) {
	case ir.Call:
		callees := pre.CalleesOf(pt.ID)
		if len(callees) == 0 {
			for _, s := range pt.Succs {
				emit(s)
			}
			return
		}
		for _, cp := range callees {
			emit(prog.ProcByID(cp).Entry)
		}
	case ir.Exit:
		for _, rs := range pre.RetSites[pt.Proc] {
			emit(rs)
		}
	default:
		for _, s := range pt.Succs {
			emit(s)
		}
	}
}

// prioRanks densifies the worklist priorities of a component's nodes: the
// worklist orders strictly by priority (ties broken by insertion), so only
// the relative ranks within the component determine the schedule, and ranks
// survive the global renumbering an edit elsewhere causes.
func prioRanks(g *dug.Graph, nodes []dug.NodeID) []int {
	uniq := make([]int, 0, len(nodes))
	for _, n := range nodes {
		uniq = append(uniq, g.Prio[n])
	}
	sort.Ints(uniq)
	k := 0
	for i, v := range uniq {
		if i == 0 || v != uniq[k-1] {
			uniq[k] = v
			k++
		}
	}
	uniq = uniq[:k]
	ranks := make([]int, len(nodes))
	for i, n := range nodes {
		ranks[i] = sort.SearchInts(uniq, g.Prio[n])
	}
	return ranks
}
