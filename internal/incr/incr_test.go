// Property tests for the component hash and the snapshot codec: the hash
// must be a pure function of version-portable content (stable across
// re-lowering and map iteration order, sensitive to every hashed input), and
// the codec must round-trip snapshots losslessly and refuse schema drift.
package incr_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"sparrow/internal/cgen"
	"sparrow/internal/dug"
	"sparrow/internal/frontend/lower"
	"sparrow/internal/frontend/parser"
	"sparrow/internal/incr"
	"sparrow/internal/ir"
	"sparrow/internal/prean"
	"sparrow/internal/solver/sparse"
)

type pipeline struct {
	prog  *ir.Program
	pre   *prean.Result
	g     *dug.Graph
	namer *ir.StableNamer
}

func build(t *testing.T, src string) *pipeline {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.File(f)
	if err != nil {
		t.Fatal(err)
	}
	pre := prean.Run(prog)
	g := dug.Build(prog, pre, dug.Options{Bypass: true})
	return &pipeline{prog: prog, pre: pre, g: g, namer: ir.NewStableNamer(prog)}
}

func structHashes(t *testing.T, src string) []string {
	p := build(t, src)
	return incr.StructHashes(p.prog, p.pre, p.g, p.namer)
}

// hashBag renders a hash slice as an order-insensitive multiset key, so
// programs can be compared even when component numbering shifts.
func hashBag(hs []string) string {
	s := append([]string(nil), hs...)
	sort.Strings(s)
	return strings.Join(s, "\n")
}

const hashBase = `
int g; int buf[8];
int f(int x) { return x + 1; }
int k(int x) { return f(x) * 2; }
int main() {
	int i; int s; s = 0;
	for (i = 0; i < 8; i++) { buf[i] = k(s); s = buf[i]; }
	g = s;
	return 0;
}
`

// TestStructHashesStable: repeated lowering of the same source — fresh
// interner state, fresh map iteration order on every run — must produce the
// identical per-component hash sequence.
func TestStructHashesStable(t *testing.T) {
	srcs := []string{hashBase, cgen.Generate(cgen.Default(21, 300)), cgen.Generate(cgen.Fuzz(22, 120))}
	for si, src := range srcs {
		ref := structHashes(t, src)
		for rep := 0; rep < 3; rep++ {
			got := structHashes(t, src)
			if len(got) != len(ref) {
				t.Fatalf("src %d rep %d: %d components vs %d", si, rep, len(got), len(ref))
			}
			for c := range ref {
				if got[c] != ref[c] {
					t.Errorf("src %d rep %d: component %d hash drifted", si, rep, c)
				}
			}
		}
	}
}

// TestStructHashPerturbation: every class of hashed content must move the
// hash when perturbed — a constant in a command, statement insertion (which
// also shifts dependency edges), callee identity at a call, and a callee's
// recursion bit (summary-ness of its locals).
func TestStructHashPerturbation(t *testing.T) {
	ref := hashBag(structHashes(t, hashBase))
	variants := []struct {
		name string
		edit func(string) string
	}{
		{"command-constant", func(s string) string { return strings.Replace(s, "x + 1", "x + 2", 1) }},
		{"statement-insert", func(s string) string { return strings.Replace(s, "g = s;", "g = s; g = g + 1;", 1) }},
		{"callee-identity", func(s string) string { return strings.Replace(s, "return f(x) * 2;", "return k(x) * 2;", 1) }},
		{"recursion-bit", func(s string) string { return strings.Replace(s, "return x + 1;", "if (x > 0) { return f(x - 1); } return x;", 1) }},
	}
	for _, v := range variants {
		edited := v.edit(hashBase)
		if edited == hashBase {
			t.Fatalf("%s: edit was a no-op", v.name)
		}
		if hashBag(structHashes(t, edited)) == ref {
			t.Errorf("%s: hashes unchanged by the perturbation", v.name)
		}
	}
}

// TestStructHashLocality: an edit inside one function must leave the hashes
// of components that do not touch it unchanged — the property the
// incremental solver's hit rate rides on. The helper functions are
// call-graph-independent, so editing one leaves the others' components (and
// their stable names) intact.
func TestStructHashLocality(t *testing.T) {
	const base = `
int a; int b;
void f() { a = 1; }
void k() { b = 2; }
int main() { f(); k(); return 0; }
`
	edited := strings.Replace(base, "a = 1;", "a = 3;", 1)
	hb, he := structHashes(t, base), structHashes(t, edited)
	if len(hb) != len(he) {
		t.Fatalf("component count changed: %d vs %d", len(hb), len(he))
	}
	same, diff := 0, 0
	for c := range hb {
		if hb[c] == he[c] {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("edit moved no component hash")
	}
	if same == 0 {
		t.Error("edit in one function invalidated every component hash")
	}
}

// solveInto runs the incremental solver over src into a fresh cache.
func solveInto(t *testing.T, src string) *incr.Cache {
	t.Helper()
	p := build(t, src)
	cache := incr.NewCache(0, 0)
	if _, _, err := sparse.AnalyzeIncremental(p.prog, p.pre, p.g, sparse.Options{}, cache); err != nil {
		t.Fatal(err)
	}
	return cache
}

// TestSnapshotRoundTrip: Encode is deterministic, and Decode∘Encode is the
// identity on the wire — the bytes of a re-encoded decoded snapshot match
// the original exactly, over handwritten and generated programs.
func TestSnapshotRoundTrip(t *testing.T) {
	srcs := []string{hashBase, cgen.Generate(cgen.Default(31, 300)), cgen.Generate(cgen.Fuzz(32, 120))}
	for si, src := range srcs {
		cache := solveInto(t, src)
		if cache.Len() == 0 {
			t.Fatalf("src %d: empty cache", si)
		}
		a, err := cache.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := cache.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("src %d: Encode is not deterministic", si)
		}
		back, err := incr.Decode(a)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != cache.Len() ||
			back.WidenThreshold != cache.WidenThreshold ||
			back.EntryWidenDelay != cache.EntryWidenDelay {
			t.Errorf("src %d: decoded cache differs: len %d/%d config (%d,%d)/(%d,%d)",
				si, back.Len(), cache.Len(),
				back.WidenThreshold, back.EntryWidenDelay,
				cache.WidenThreshold, cache.EntryWidenDelay)
		}
		c, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, c) {
			t.Errorf("src %d: Decode∘Encode is not the identity on the wire", si)
		}
	}
}

// TestDecodeSchemaDrift: a snapshot from a different schema version is a
// refusal, never a silent partial load; corrupt bytes likewise.
func TestDecodeSchemaDrift(t *testing.T) {
	cache := solveInto(t, hashBase)
	data, err := cache.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["schema"] = json.RawMessage(fmt.Sprint(incr.SnapshotSchema + 1))
	drifted, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incr.Decode(drifted); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema drift: got %v, want a schema refusal", err)
	}
	if _, err := incr.Decode([]byte("{not json")); err == nil {
		t.Error("corrupt snapshot decoded without error")
	}
}

// TestChainNext pins the chain algebra: distinct inputs or distinct history
// prefixes give distinct keys, equal ones give equal keys, and the part
// framing cannot alias across the boundary.
func TestChainNext(t *testing.T) {
	if incr.ChainNext("a", "b") != incr.ChainNext("a", "b") {
		t.Error("ChainNext is not a function")
	}
	if incr.ChainNext("a", "b") == incr.ChainNext("a", "c") {
		t.Error("input collision")
	}
	if incr.ChainNext("a", "b") == incr.ChainNext("x", "b") {
		t.Error("history collision")
	}
	if incr.HashParts("ab", "c") == incr.HashParts("a", "bc") {
		t.Error("part framing aliased")
	}
}
