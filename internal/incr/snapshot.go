// Package incr is the persistence layer of incremental re-analysis: a
// versioned snapshot memoizing, per SCC component of the sparse scheduling
// DAG, the transcripts of the canonical one-worker component runs. Entries
// are content-addressed — the key hashes the component's structure, its full
// input history, and the current run's incoming values (see hash.go) — so a
// snapshot taken after a solve replays bit-identically on any later program
// version wherever the keys still match, and silently falls back to a live
// solve wherever they do not. The solver driver that records and replays the
// transcripts lives in internal/solver/sparse; this package owns the data
// model, the stable value codec, and the schema-versioned wire format.
package incr

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sparrow/internal/ir"
	"sparrow/internal/lattice/itv"
	"sparrow/internal/lattice/val"
)

// SnapshotSchema is the wire-format version. Bump it whenever the hash
// definition, the transcript contents, or the value encoding changes
// meaning: a decoded snapshot of a different schema is rejected outright
// (the metrics/bench schema discipline), because replaying a transcript
// recorded under different rules would silently poison every downstream
// fixpoint.
const SnapshotSchema = 1

// Run is the transcript of one component run: the externally visible effects
// and internal state deltas of executing the component's worklist loop once,
// under the canonical sequential schedule. Node references are the dense
// per-component local indices (stable across program versions whenever the
// component's structure hash matches); location references index the
// snapshot's stable-key dictionary.
type Run struct {
	// Fired lists the points (by local index, sorted) that fired
	// successfully at least once — i.e. propagated control reachability.
	// Replay re-marks their control successors against the *current*
	// program; the target set is recomputed, never stored.
	Fired []int32 `json:"fired,omitempty"`
	// Out/Acc record the run's changed output and (component-internal)
	// accumulated-input entries with their final values. Intermediate
	// ascending values are not stored: pushing only the final value through
	// the LessEq-gated joins reaches the same downstream state (the joins
	// are monotone and the final value dominates the intermediates).
	Out []Delta `json:"out,omitempty"`
	Acc []Delta `json:"acc,omitempty"`
	// Counts records the changed per-(node, definition) widening-counter
	// slots with their final values; Def indexes Defs[node].
	Counts []Count `json:"counts,omitempty"`
	// Solver work performed by the run, re-credited on replay so the
	// metrics counters stay bit-identical to a cold solve.
	Steps     int64 `json:"steps,omitempty"`
	Joins     int64 `json:"joins,omitempty"`
	Widenings int64 `json:"widenings,omitempty"`
}

// Delta is one changed (node, location) entry with its final value.
type Delta struct {
	Node int32 `json:"n"`
	Loc  int32 `json:"l"` // index into the snapshot's location dictionary
	Val  Value `json:"v"`
}

// Count is one changed widening-counter slot.
type Count struct {
	Node int32 `json:"n"`
	Def  int32 `json:"d"`
	Cnt  int32 `json:"c"`
}

// Value is the wire form of val.Val. Pointer targets and function members
// reference the dictionaries, so a decoded value is portable across program
// versions (decoding fails — forcing a cache miss — when a referenced entity
// no longer exists).
type Value struct {
	Itv    Interval `json:"i"`
	Ptr    []Ptr    `json:"p,omitempty"`
	Fns    []int32  `json:"f,omitempty"`
	Uninit bool     `json:"u,omitempty"`
}

// Interval is the wire form of itv.Itv: "bot", or decimal/"-oo"/"+oo"
// endpoint strings (int64 endpoints are exact in decimal; JSON numbers
// would round through float64).
type Interval struct {
	Bot bool   `json:"bot,omitempty"`
	Lo  string `json:"lo,omitempty"`
	Hi  string `json:"hi,omitempty"`
}

// Ptr is one points-to entry.
type Ptr struct {
	Loc int32    `json:"l"`
	Off Interval `json:"o"`
	Sz  Interval `json:"s"`
}

// snapshot is the wire envelope.
type snapshot struct {
	Schema int `json:"schema"`
	// The widening configuration the transcripts were recorded under; a
	// replay under different thresholds would diverge, so users must check
	// it (core does) before reusing the cache.
	WidenThreshold  int             `json:"widen_threshold"`
	EntryWidenDelay int             `json:"entry_widen_delay"`
	Locs            []string        `json:"locs,omitempty"`
	Procs           []string        `json:"procs,omitempty"`
	Entries         map[string]*Run `json:"entries,omitempty"`
}

// Cache is the runtime form of a snapshot: the memo table plus the stable
// dictionaries, optionally bound to a concrete program for encoding and
// decoding values.
type Cache struct {
	// WidenThreshold/EntryWidenDelay stamp the widening configuration the
	// transcripts assume (the solver's resolved defaults, never 0).
	WidenThreshold  int
	EntryWidenDelay int

	entries map[string]*Run
	locs    []string
	procs   []string
	locIdx  map[string]int32
	procIdx map[string]int32

	// Binding against a concrete program version (Bind): dictionary entry i
	// resolves to locIDs[i]/procIDs[i], or ir.None when the entity does not
	// exist in this version.
	namer   *ir.StableNamer
	locIDs  []ir.LocID
	procIDs []ir.ProcID
	locOf   map[ir.LocID]int32
	procOf  map[ir.ProcID]int32
}

// NewCache returns an empty cache stamped with the given (resolved, nonzero)
// widening configuration.
func NewCache(widenThreshold, entryWidenDelay int) *Cache {
	return &Cache{
		WidenThreshold:  widenThreshold,
		EntryWidenDelay: entryWidenDelay,
		entries:         map[string]*Run{},
		locIdx:          map[string]int32{},
		procIdx:         map[string]int32{},
	}
}

// Len returns the number of memoized runs.
func (c *Cache) Len() int { return len(c.entries) }

// Lookup returns the memoized run for key.
func (c *Cache) Lookup(key string) (*Run, bool) {
	r, ok := c.entries[key]
	return r, ok
}

// Store memoizes a run under key.
func (c *Cache) Store(key string, r *Run) { c.entries[key] = r }

// Bind resolves the cache's dictionaries against prog: every stable key is
// looked up (never interned) in the program, so entries referencing entities
// absent from this version decode as misses. Bind must be called before
// EncodeVal/DecodeVal/LocID/ProcID; calling it again re-binds to a new
// program version.
func (c *Cache) Bind(prog *ir.Program, namer *ir.StableNamer) {
	c.namer = namer
	c.locIDs = make([]ir.LocID, len(c.locs))
	c.procIDs = make([]ir.ProcID, len(c.procs))
	c.locOf = make(map[ir.LocID]int32, len(c.locs))
	c.procOf = make(map[ir.ProcID]int32, len(c.procs))
	for i, key := range c.locs {
		if id, ok := namer.ResolveLoc(key); ok {
			c.locIDs[i] = id
			c.locOf[id] = int32(i)
		} else {
			c.locIDs[i] = ir.None
		}
	}
	for i, key := range c.procs {
		if id, ok := namer.ResolveProc(key); ok {
			c.procIDs[i] = id
			c.procOf[id] = int32(i)
		} else {
			c.procIDs[i] = ir.None
		}
	}
}

// LocIdx interns the dictionary index of location l (recording side).
func (c *Cache) LocIdx(l ir.LocID) int32 {
	if i, ok := c.locOf[l]; ok {
		return i
	}
	key := c.namer.LocKey(l)
	i, ok := c.locIdx[key]
	if !ok {
		i = int32(len(c.locs))
		c.locs = append(c.locs, key)
		c.locIdx[key] = i
		c.locIDs = append(c.locIDs, l)
	}
	c.locOf[l] = i
	return i
}

// ProcIdx interns the dictionary index of procedure p (recording side).
func (c *Cache) ProcIdx(p ir.ProcID) int32 {
	if i, ok := c.procOf[p]; ok {
		return i
	}
	key := c.namer.ProcKey(p)
	i, ok := c.procIdx[key]
	if !ok {
		i = int32(len(c.procs))
		c.procs = append(c.procs, key)
		c.procIdx[key] = i
		c.procIDs = append(c.procIDs, p)
	}
	c.procOf[p] = i
	return i
}

// LocID resolves a dictionary index against the bound program.
func (c *Cache) LocID(idx int32) (ir.LocID, bool) {
	if int(idx) >= len(c.locIDs) || c.locIDs[idx] == ir.None {
		return 0, false
	}
	return c.locIDs[idx], true
}

// ProcID resolves a dictionary index against the bound program.
func (c *Cache) ProcID(idx int32) (ir.ProcID, bool) {
	if int(idx) >= len(c.procIDs) || c.procIDs[idx] == ir.None {
		return 0, false
	}
	return c.procIDs[idx], true
}

// EncodeVal encodes a value against the bound program's dictionaries.
func (c *Cache) EncodeVal(v val.Val) Value {
	out := Value{Itv: encodeItv(v.Itv()), Uninit: v.MayUninit()}
	for _, e := range v.Ptr() {
		out.Ptr = append(out.Ptr, Ptr{
			Loc: c.LocIdx(e.Loc),
			Off: encodeItv(e.R.Off),
			Sz:  encodeItv(e.R.Sz),
		})
	}
	for _, f := range v.Fns() {
		out.Fns = append(out.Fns, c.ProcIdx(f))
	}
	return out
}

// DecodeVal decodes a wire value against the bound program. ok is false when
// any referenced location or procedure does not resolve in this program
// version or an interval is malformed — callers treat that as a cache miss.
func (c *Cache) DecodeVal(w Value) (val.Val, bool) {
	i, ok := decodeItv(w.Itv)
	if !ok {
		return val.Bot, false
	}
	var ptr []val.PtrEntry
	for _, p := range w.Ptr {
		l, ok := c.LocID(p.Loc)
		if !ok {
			return val.Bot, false
		}
		off, ok1 := decodeItv(p.Off)
		sz, ok2 := decodeItv(p.Sz)
		if !ok1 || !ok2 {
			return val.Bot, false
		}
		ptr = append(ptr, val.PtrEntry{Loc: l, R: val.Region{Off: off, Sz: sz}})
	}
	var fns []ir.ProcID
	for _, f := range w.Fns {
		p, ok := c.ProcID(f)
		if !ok {
			return val.Bot, false
		}
		fns = append(fns, p)
	}
	return val.Make(i, ptr, fns, w.Uninit), true
}

func encodeItv(v itv.Itv) Interval {
	if v.IsBot() {
		return Interval{Bot: true}
	}
	return Interval{Lo: encodeBound(v.Lo()), Hi: encodeBound(v.Hi())}
}

func encodeBound(b itv.Bound) string {
	switch {
	case b.IsNegInf():
		return "-oo"
	case b.IsPosInf():
		return "+oo"
	default:
		return strconv.FormatInt(b.Int(), 10)
	}
}

func decodeItv(w Interval) (itv.Itv, bool) {
	if w.Bot {
		return itv.Bot, true
	}
	lo, ok1 := decodeBound(w.Lo)
	hi, ok2 := decodeBound(w.Hi)
	if !ok1 || !ok2 || lo.Cmp(hi) > 0 {
		return itv.Bot, false
	}
	return itv.Of(lo, hi), true
}

func decodeBound(s string) (itv.Bound, bool) {
	switch s {
	case "-oo":
		return itv.NegInf, true
	case "+oo":
		return itv.PosInf, true
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return itv.Bound{}, false
	}
	return itv.Fin(n), true
}

// Encode serializes the cache. The output is deterministic — JSON object
// keys come out sorted and the dictionaries preserve interning order, which
// is itself canonical because the recording schedule is — so two snapshots
// of identical solves are byte-identical.
func (c *Cache) Encode() ([]byte, error) {
	s := snapshot{
		Schema:          SnapshotSchema,
		WidenThreshold:  c.WidenThreshold,
		EntryWidenDelay: c.EntryWidenDelay,
		Locs:            c.locs,
		Procs:           c.procs,
		Entries:         c.entries,
	}
	return json.MarshalIndent(&s, "", " ")
}

// Decode parses a serialized snapshot. A schema mismatch is an error, never
// a silent fallback: the caller decides whether to re-solve cold.
func Decode(data []byte) (*Cache, error) {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("incr: corrupt snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("incr: snapshot schema %d is not the supported %d (re-solve cold and save a fresh snapshot)", s.Schema, SnapshotSchema)
	}
	c := NewCache(s.WidenThreshold, s.EntryWidenDelay)
	c.locs = s.Locs
	c.procs = s.Procs
	if s.Entries != nil {
		c.entries = s.Entries
	}
	for i, key := range c.locs {
		c.locIdx[key] = int32(i)
	}
	for i, key := range c.procs {
		c.procIdx[key] = int32(i)
	}
	return c, nil
}

// LoadFile reads and decodes a snapshot file.
func LoadFile(path string) (*Cache, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// SaveFile encodes the cache and writes it to path.
func (c *Cache) SaveFile(path string) error {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValKey renders a value as a canonical string for input hashing: a pure
// function of the value's structural content with every location and
// procedure named stably, so two Eq values — on any program version — render
// identically.
func ValKey(v val.Val, sn *ir.StableNamer) string {
	var b strings.Builder
	b.WriteString("i=")
	writeItvKey(&b, v.Itv())
	for _, e := range v.Ptr() {
		b.WriteString(";&")
		b.WriteString(sn.LocKey(e.Loc))
		b.WriteByte('/')
		writeItvKey(&b, e.R.Off)
		b.WriteByte('/')
		writeItvKey(&b, e.R.Sz)
	}
	for _, f := range v.Fns() {
		b.WriteString(";fn=")
		b.WriteString(sn.ProcKey(f))
	}
	if v.MayUninit() {
		b.WriteString(";u")
	}
	return b.String()
}

func writeItvKey(b *strings.Builder, v itv.Itv) {
	if v.IsBot() {
		b.WriteString("bot")
		return
	}
	b.WriteByte('[')
	b.WriteString(encodeBound(v.Lo()))
	b.WriteByte(',')
	b.WriteString(encodeBound(v.Hi()))
	b.WriteByte(']')
}
