// Package leakcheck is a test utility that asserts a block of code leaks no
// goroutines: snapshot the goroutine count, run the block, and require the
// count to settle back to the snapshot. Used by the cancellation and
// fault-injection tests to prove that mid-flight aborts of the parallel
// solver, the graph builder, and the heap sampler never strand workers.
package leakcheck

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"time"
)

// DefaultPatience bounds how long Settle waits for transient goroutines
// (scheduler wind-down is asynchronous; a worker that has returned from its
// function may not yet be reaped when wg.Wait returns).
const DefaultPatience = 5 * time.Second

// Settle polls until the goroutine count drops to at most base, or patience
// (<= 0 means DefaultPatience) elapses. It returns the last observed count;
// a leak is indicated by count > base.
func Settle(base int, patience time.Duration) int {
	if patience <= 0 {
		patience = DefaultPatience
	}
	deadline := time.Now().Add(patience)
	n := runtime.NumGoroutine()
	for n > base && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// Check runs fn and reports whether the goroutine count returned to its
// pre-fn level, with the final count and a goroutine dump on failure.
func Check(fn func()) (ok bool, before, after int, dump string) {
	before = runtime.NumGoroutine()
	fn()
	after = Settle(before, 0)
	if after <= before {
		return true, before, after, ""
	}
	var buf bytes.Buffer
	_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
	return false, before, after, buf.String()
}
