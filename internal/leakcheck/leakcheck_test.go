package leakcheck

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCheckCleanBlock(t *testing.T) {
	ok, before, after, dump := Check(func() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() { defer wg.Done() }()
		}
		wg.Wait()
	})
	if !ok {
		t.Fatalf("clean block reported as leaking: %d -> %d\n%s", before, after, dump)
	}
	if dump != "" {
		t.Fatalf("clean block produced a dump")
	}
}

func TestCheckDetectsLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("rides out the full settle patience")
	}
	release := make(chan struct{})
	started := make(chan struct{})
	ok, before, after, dump := Check(func() {
		go func() {
			close(started)
			<-release
		}()
		<-started
	})
	// Unblock the goroutine regardless of the verdict so it does not
	// contaminate later tests in the package.
	close(release)
	if ok {
		t.Fatalf("stranded goroutine not detected (%d -> %d)", before, after)
	}
	if after <= before {
		t.Fatalf("after=%d not above before=%d", after, before)
	}
	if !strings.Contains(dump, "goroutine") {
		t.Fatalf("dump missing goroutine profile:\n%s", dump)
	}
	// The detector's patience loop must itself terminate promptly once the
	// leak is released.
	if n := Settle(before, 2*time.Second); n > before {
		t.Fatalf("released goroutine never reaped: %d > %d", n, before)
	}
}
