// Package dug builds the data-dependency graph (def-use graph) that drives
// the sparse analysis: the relation ↝ ⊆ C × L# × C of Definition 3/4,
// approximated by D̂/Û from the pre-analysis (Definition 5) and generated
// with the standard SSA algorithm as Section 5 describes.
//
// Construction is per-procedure: a call is a definition (resp. use) of the
// locations its callees may define (resp. use), the entry of a procedure
// defines every location the body uses, and the exit uses every location the
// body defines; dependencies then link call sites to entries and exits to
// return sites. The chain-bypass optimization of Section 5 splices nodes
// that neither define nor use a location out of its dependency chains, which
// the paper reports is what makes the interprocedural analysis actually
// sparse.
package dug

import (
	"sort"
	"sync"

	"sparrow/internal/callgraph"
	"sparrow/internal/cfg"
	"sparrow/internal/ir"
	"sparrow/internal/metrics"
	"sparrow/internal/par"
	"sparrow/internal/prean"
	"sparrow/internal/sem"
	"sparrow/internal/ssa"
)

// NodeID identifies a node of the def-use graph: IDs below PointCount are
// control points, the rest are phi nodes.
type NodeID int32

// Phi is an SSA join node for one location, placed at a control point.
type Phi struct {
	At  ir.PointID
	Loc ir.LocID
}

// Options configures graph construction.
type Options struct {
	// Bypass enables the interprocedural chain-bypass optimization.
	Bypass bool
	// MaxSpliceFanout bounds |preds|×|succs| of a splice to avoid edge
	// blowup (0 uses the default of 256).
	MaxSpliceFanout int
	// Workers fans the per-point D̂/Û computation and the per-procedure
	// SSA passes (dominators, phi placement, renaming) across this many
	// goroutines. Values <= 1 build sequentially. The graph is identical
	// for every worker count: parallel phases stage into per-point or
	// per-procedure slots and are merged in a fixed order.
	Workers int
	// Metrics, when non-nil, receives the finished graph's size counters
	// (nodes, dependency triples, phis, spliced triples, ΣD̂/ΣÛ) — the
	// paper's first-class sparse-representation scalability metric.
	Metrics *metrics.Collector
}

// Graph is the def-use graph.
type Graph struct {
	Prog       *ir.Program
	PointCount int
	Phis       []Phi
	// Defs[n]/Uses[n] are D̂/Û per node (post-bypass), sorted.
	Defs [][]ir.LocID
	Uses [][]ir.LocID
	// Widen[n] marks per-location widening nodes: phis at loop heads and
	// entries of recursive procedures.
	Widen []bool
	// Prio[n] is the worklist priority.
	Prio []int
	// EdgeCount is the number of ⟨from, loc, to⟩ triples.
	EdgeCount int
	// SplicedEdges counts edges removed+added by the bypass optimization.
	SplicedTriples int

	out []map[ir.LocID][]NodeID

	partOnce sync.Once
	part     *Partition
}

// NumNodes returns the node count (points + phis).
func (g *Graph) NumNodes() int { return g.PointCount + len(g.Phis) }

// IsPhi reports whether n is a phi node.
func (g *Graph) IsPhi(n NodeID) bool { return int(n) >= g.PointCount }

// PhiOf returns the phi descriptor of a phi node.
func (g *Graph) PhiOf(n NodeID) Phi { return g.Phis[int(n)-g.PointCount] }

// PointOf returns the control point of a point node.
func (g *Graph) PointOf(n NodeID) ir.PointID { return ir.PointID(n) }

// Succs returns the dependency successors of n on location l.
func (g *Graph) Succs(n NodeID, l ir.LocID) []NodeID { return g.out[n][l] }

// Range visits every dependency triple until f returns false.
func (g *Graph) Range(f func(from NodeID, l ir.LocID, to NodeID) bool) {
	for n := range g.out {
		for l, succs := range g.out[n] {
			for _, t := range succs {
				if !f(NodeID(n), l, t) {
					return
				}
			}
		}
	}
}

// AvgDefUse returns the average |D̂(c)| and |Û(c)| over statement points
// (Table 2/3's D̂(c) and Û(c) columns).
func (g *Graph) AvgDefUse() (avgD, avgU float64) {
	n := 0
	var sd, su int
	for id := 0; id < g.PointCount; id++ {
		switch g.Prog.Point(ir.PointID(id)).Cmd.(type) {
		case ir.Entry, ir.Exit, ir.Skip:
			continue
		}
		n++
		sd += len(g.Defs[id])
		su += len(g.Uses[id])
	}
	if n == 0 {
		return 0, 0
	}
	return float64(sd) / float64(n), float64(su) / float64(n)
}

// Source abstracts what graph construction needs from an analysis design,
// so the same builder serves the non-relational (locations) and relational
// (packs) instantiations. The ID space of "locations" is whatever the
// DefsUses/summaries speak — ir.LocID for intervals, pack IDs for octagons.
type Source struct {
	Prog     *ir.Program
	CG       *callgraph.Graph
	Callees  func(ir.PointID) []ir.ProcID
	RetSites [][]ir.PointID
	// DefsUses returns the command-local D̂(c)/Û(c).
	DefsUses func(pt *ir.Point) (defs, uses sem.LocSet)
	// AlwaysKills returns D_always(c); required only by BuildDefUseChains.
	AlwaysKills func(pt *ir.Point) sem.LocSet
	// DefSummary/UseSummary are the transitive per-procedure summaries.
	DefSummary []map[ir.LocID]bool
	UseSummary []map[ir.LocID]bool
	// RetChan maps a procedure to its return-channel ID (ir.None if void).
	RetChan func(p ir.ProcID) ir.LocID
}

// IntervalSource adapts the non-relational pre-analysis to a Source.
func IntervalSource(prog *ir.Program, pre *prean.Result) *Source {
	s := &sem.Sem{Prog: prog, Callees: pre.CalleesOf, InCycle: pre.CG.InCycle}
	return &Source{
		Prog:     prog,
		CG:       pre.CG,
		Callees:  pre.CalleesOf,
		RetSites: pre.RetSites,
		DefsUses: func(pt *ir.Point) (sem.LocSet, sem.LocSet) {
			return s.DefsUses(pt, pre.Mem)
		},
		AlwaysKills: func(pt *ir.Point) sem.LocSet {
			return s.AlwaysKills(pt, pre.Mem)
		},
		DefSummary: pre.DefSummary,
		UseSummary: pre.UseSummary,
		RetChan:    func(p ir.ProcID) ir.LocID { return prog.ProcByID(p).RetLoc },
	}
}

// builder carries construction state.
type builder struct {
	prog *ir.Program
	src  *Source
	opt  Options

	g        *Graph
	defSets  []map[ir.LocID]bool // per node
	useSets  []map[ir.LocID]bool
	passSets []map[ir.LocID]bool // linkage-only locations (bypass candidates)
	// outSet/inSet stage the dependency triples as dedup'd slices (addEdge
	// scans before appending; fanout per ⟨node, loc⟩ is small and bounded by
	// the splice cap). Slices keep staging cheap — the former map-of-set
	// representation allocated two maps per ⟨node, loc⟩ pair and dominated
	// the build's allocation profile — and finalize sorts, so only set
	// content matters.
	outSet []map[ir.LocID][]NodeID
	inSet  []map[ir.LocID][]NodeID
}

// Build constructs the def-use graph of prog from the non-relational
// pre-analysis result.
func Build(prog *ir.Program, pre *prean.Result, opt Options) *Graph {
	return BuildFrom(IntervalSource(prog, pre), opt)
}

// BuildFrom constructs the def-use graph from an arbitrary Source.
func BuildFrom(src *Source, opt Options) *Graph {
	prog := src.Prog
	if opt.MaxSpliceFanout == 0 {
		opt.MaxSpliceFanout = 256
	}
	b := &builder{
		prog: prog,
		src:  src,
		opt:  opt,
		g:    &Graph{Prog: prog, PointCount: len(prog.Points)},
	}
	b.initNodes()
	info := cfg.Compute(prog, src.CG, src.Callees)
	// Point nodes inherit the solver widening points (loop heads, recursive
	// entries and return sites); phis get theirs during placement. Widening
	// nodes are also pinned by the bypass optimization so that every
	// dependency cycle keeps a widening point.
	for i := range prog.Points {
		if info.Widen[i] {
			b.g.Widen[i] = true
		}
	}
	// Stage the per-procedure SSA passes (dominators, phi placement,
	// renaming) — each reads only the shared per-point tables, so they fan
	// out — then merge in procedure order, which assigns phi node IDs
	// exactly as a sequential build would.
	staged := make([]*procBuild, len(prog.Procs))
	par.For(len(prog.Procs), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			staged[i] = b.stageProc(prog.Procs[i], info)
		}
	})
	for i, pr := range prog.Procs {
		b.mergeProc(pr, staged[i])
	}
	b.linkInterproc()
	if opt.Bypass {
		b.bypass()
	}
	b.finalize(info)
	b.g.flushMetrics(opt.Metrics)
	return b.g
}

// flushMetrics records the finished graph's size counters.
func (g *Graph) flushMetrics(col *metrics.Collector) {
	if col == nil {
		return
	}
	col.Add(metrics.CtrDUGNodes, int64(g.NumNodes()))
	col.Add(metrics.CtrDUGEdges, int64(g.EdgeCount))
	col.Add(metrics.CtrDUGPhis, int64(len(g.Phis)))
	col.Add(metrics.CtrDUGSpliced, int64(g.SplicedTriples))
	var defs, uses int64
	for n := range g.Defs {
		defs += int64(len(g.Defs[n]))
		uses += int64(len(g.Uses[n]))
	}
	col.Add(metrics.CtrDUGDefs, defs)
	col.Add(metrics.CtrDUGUses, uses)
}

// ensureNode grows the per-node tables to cover node n.
func (b *builder) ensureNode(n NodeID) {
	for len(b.defSets) <= int(n) {
		b.defSets = append(b.defSets, nil)
		b.useSets = append(b.useSets, nil)
		b.passSets = append(b.passSets, nil)
		b.outSet = append(b.outSet, nil)
		b.inSet = append(b.inSet, nil)
		b.g.Widen = append(b.g.Widen, false)
	}
}

func addTo(sets []map[ir.LocID]bool, n NodeID, l ir.LocID) {
	if sets[n] == nil {
		sets[n] = map[ir.LocID]bool{}
	}
	sets[n][l] = true
}

// initNodes computes the per-point D̂/Û including interprocedural linkage
// sets, and records which memberships are linkage-only (bypassable). Each
// point writes only its own node's tables, so the sweep fans out across
// workers after the tables are grown to their final point count.
func (b *builder) initNodes() {
	for i := 0; i < len(b.prog.Points); i++ {
		b.ensureNode(NodeID(i))
	}
	par.For(len(b.prog.Points), b.opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b.initNode(b.prog.Points[i])
		}
	})
}

// initNode fills the D̂/Û/pass tables of one point.
func (b *builder) initNode(pt *ir.Point) {
	n := NodeID(pt.ID)
	ownD, ownU := b.src.DefsUses(pt)
	for l := range ownD {
		addTo(b.defSets, n, l)
	}
	for l := range ownU {
		addTo(b.useSets, n, l)
	}
	// Interprocedural linkage (Section 5): a call uses everything its
	// callees access — including the locations they may (weakly or
	// spuriously) define, so that stale caller values flow *through*
	// the callee and are killed by its strong definitions rather than
	// rejoined at the return site. Entries define what flows in, exits
	// use what the body defined, return sites define the callee-final
	// values they receive from the exit.
	switch c := pt.Cmd.(type) {
	case ir.Call:
		// The call both uses and defines (relays) everything its
		// callees access: its definition values are the identity on the
		// caller's reaching values (plus the formal bindings), carried
		// into the callee entry by the call→entry edges.
		for _, p := range b.src.Callees(pt.ID) {
			for _, summ := range []map[ir.LocID]bool{b.src.UseSummary[p], b.src.DefSummary[p]} {
				for l := range summ {
					if !ownU[l] && !ownD[l] {
						addTo(b.passSets, n, l)
					}
					addTo(b.useSets, n, l)
					addTo(b.defSets, n, l)
				}
			}
		}
	case ir.Entry:
		pr := b.prog.ProcByID(pt.Proc)
		if pr.Entry == pt.ID {
			for _, summ := range []map[ir.LocID]bool{b.src.UseSummary[pt.Proc], b.src.DefSummary[pt.Proc]} {
				for l := range summ {
					addTo(b.defSets, n, l)
					addTo(b.passSets, n, l)
				}
			}
		}
	case ir.Exit:
		// The exit both uses and defines (relays) everything the body
		// accessed — not just what it defined. Access-based localization
		// returns the whole accessed slice of the callee memory to the
		// return sites, so a used-but-never-defined location round-trips
		// through the callee and is joined across its call sites; the
		// sparse graph must reproduce exactly that flow, or the sparse
		// fixpoint comes out strictly tighter than the baseline at
		// multi-site callees (breaking Lemma 2 fidelity).
		for _, summ := range []map[ir.LocID]bool{b.src.UseSummary[pt.Proc], b.src.DefSummary[pt.Proc]} {
			for l := range summ {
				if !ownU[l] {
					addTo(b.passSets, n, l)
				}
				addTo(b.useSets, n, l)
				addTo(b.defSets, n, l)
			}
		}
		if rl := b.src.RetChan(pt.Proc); rl != ir.None {
			addTo(b.useSets, n, rl)
			addTo(b.defSets, n, rl)
		}
	case ir.RetBind:
		// Mirror of the exit: the return site defines everything any
		// callee accessed (the localized return memory).
		for _, p := range b.src.Callees(c.CallPt) {
			rl := b.src.RetChan(p)
			for _, summ := range []map[ir.LocID]bool{b.src.UseSummary[p], b.src.DefSummary[p]} {
				for l := range summ {
					if !ownD[l] && !ownU[l] && l != rl {
						addTo(b.passSets, n, l)
					}
					addTo(b.defSets, n, l)
				}
			}
			// The return channel must arrive exclusively over the
			// exit→return-site edge; caller-side SSA wiring of it would
			// join stale pre-call values into the delivered result.
			if rl != ir.None && b.useSets[n] != nil {
				delete(b.useSets[n], rl)
			}
		}
	}
}

// procBuild is the staged output of one procedure's SSA pass. Phi nodes are
// procedure-local (index into phis); edges reference them through negative
// NodeIDs until the merge assigns global IDs. Staging keeps the per-procedure
// passes free of shared writes so they can run on separate goroutines.
type procBuild struct {
	recursive bool
	phis      []Phi
	phiWiden  []bool
	edges     []stagedEdge
}

type stagedEdge struct {
	from NodeID // >= 0: point node; < 0: local phi ref
	loc  ir.LocID
	to   NodeID
}

// phiRef encodes local phi index i as a negative NodeID placeholder.
func phiRef(i int) NodeID { return NodeID(-1 - i) }

// stageProc runs per-location SSA over one procedure: phi placement at
// iterated dominance frontiers of definition sites, then a single renaming
// walk over the dominator tree collecting def→use dependency edges. It only
// reads the shared per-point tables (complete after initNodes), so stages
// for different procedures are safe to run concurrently.
func (b *builder) stageProc(pr *ir.Proc, info *cfg.Info) *procBuild {
	if len(pr.Points) == 0 || pr.Entry == ir.None {
		return nil
	}
	dom := ssa.Compute(b.prog, pr)
	heads := cfg.LoopHeads(b.prog, pr)
	pb := &procBuild{recursive: b.src.CG.InCycle(pr.ID)}

	// Collect tracked locations and their definition sites (RPO indices).
	defSites := map[ir.LocID][]int{}
	for i, id := range dom.Order {
		for l := range b.defSets[id] {
			defSites[l] = append(defSites[l], i)
		}
	}
	// Deterministic iteration order over locations.
	locs := make([]ir.LocID, 0, len(defSites))
	for l := range defSites {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })

	// Phi placement.
	phiAt := make([]map[ir.LocID]NodeID, len(dom.Order))
	for _, l := range locs {
		for _, i := range dom.IteratedFrontier(defSites[l]) {
			pid := dom.Order[i]
			n := phiRef(len(pb.phis))
			pb.phis = append(pb.phis, Phi{At: pid, Loc: l})
			pb.phiWiden = append(pb.phiWiden, heads[pid])
			if phiAt[i] == nil {
				phiAt[i] = map[ir.LocID]NodeID{}
			}
			phiAt[i][l] = n
		}
	}

	addEdge := func(from NodeID, l ir.LocID, to NodeID) {
		pb.edges = append(pb.edges, stagedEdge{from: from, loc: l, to: to})
	}

	// Renaming: one preorder walk of the dominator tree with a stack per
	// location.
	stacks := map[ir.LocID][]NodeID{}
	top := func(l ir.LocID) (NodeID, bool) {
		s := stacks[l]
		if len(s) == 0 {
			return 0, false
		}
		return s[len(s)-1], true
	}
	var visit func(i int)
	visit = func(i int) {
		pid := dom.Order[i]
		n := NodeID(pid)
		var pushed []ir.LocID
		// Phis first: they join the incoming paths and dominate the point's
		// own use/def.
		phiLocs := make([]ir.LocID, 0, len(phiAt[i]))
		for l := range phiAt[i] {
			phiLocs = append(phiLocs, l)
		}
		sort.Slice(phiLocs, func(a, c int) bool { return phiLocs[a] < phiLocs[c] })
		for _, l := range phiLocs {
			stacks[l] = append(stacks[l], phiAt[i][l])
			pushed = append(pushed, l)
		}
		// Uses read the value reaching the point (after phis).
		for l := range b.useSets[n] {
			if d, ok := top(l); ok {
				addEdge(d, l, n)
			}
		}
		// Defs kill for dominated points. (Weak definitions are also uses,
		// so their incoming value still flows — Definition 3's treatment of
		// may-kills.)
		for l := range b.defSets[n] {
			stacks[l] = append(stacks[l], n)
			pushed = append(pushed, l)
		}
		// Feed phi inputs of CFG successors.
		for _, s := range b.prog.Point(pid).Succs {
			si, ok := dom.Index[s]
			if !ok {
				continue
			}
			for l, ph := range phiAt[si] {
				if d, ok := top(l); ok {
					addEdge(d, l, ph)
				}
			}
		}
		for _, c := range dom.Children[i] {
			visit(c)
		}
		for _, l := range pushed {
			stacks[l] = stacks[l][:len(stacks[l])-1]
		}
	}
	visit(0)
	return pb
}

// mergeProc folds one staged procedure into the shared builder state,
// assigning global phi NodeIDs. Called in procedure order, it numbers phis
// exactly as the former sequential per-procedure loop did.
func (b *builder) mergeProc(pr *ir.Proc, pb *procBuild) {
	if pb == nil {
		return
	}
	if pb.recursive {
		b.g.Widen[pr.Entry] = true
	}
	base := NodeID(b.g.PointCount + len(b.g.Phis))
	for i, ph := range pb.phis {
		n := base + NodeID(i)
		b.g.Phis = append(b.g.Phis, ph)
		b.ensureNode(n)
		addTo(b.defSets, n, ph.Loc)
		addTo(b.useSets, n, ph.Loc)
		if pb.phiWiden[i] {
			b.g.Widen[n] = true
		}
	}
	resolve := func(n NodeID) NodeID {
		if n < 0 {
			return base + NodeID(-1-int(n))
		}
		return n
	}
	for _, e := range pb.edges {
		b.addEdge(resolve(e.from), e.loc, resolve(e.to))
	}
}

// addEdge records the dependency triple ⟨from, l, to⟩. Self-edges are kept:
// SSA renaming never produces them, but the bypass optimization can collapse
// a spurious interprocedural feedback cycle (callee effect → return site →
// another call site → callee) onto a single transfer node, and the solver
// must keep iterating that cycle exactly as the dense analysis does.
func (b *builder) addEdge(from NodeID, l ir.LocID, to NodeID) {
	if b.outSet[from] == nil {
		b.outSet[from] = map[ir.LocID][]NodeID{}
	}
	out := b.outSet[from][l]
	if containsNode(out, to) {
		return
	}
	b.outSet[from][l] = append(out, to)
	if b.inSet[to] == nil {
		b.inSet[to] = map[ir.LocID][]NodeID{}
	}
	b.inSet[to][l] = append(b.inSet[to][l], from)
}

func (b *builder) delEdge(from NodeID, l ir.LocID, to NodeID) {
	if m := b.outSet[from]; m != nil {
		m[l] = removeNode(m[l], to)
	}
	if m := b.inSet[to]; m != nil {
		m[l] = removeNode(m[l], from)
	}
}

func containsNode(s []NodeID, n NodeID) bool {
	for _, m := range s {
		if m == n {
			return true
		}
	}
	return false
}

// removeNode deletes the first occurrence of n (order is irrelevant: the
// staged sets are sorted in finalize).
func removeNode(s []NodeID, n NodeID) []NodeID {
	for i, m := range s {
		if m == n {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// linkInterproc adds the call→entry and exit→return-site dependencies.
func (b *builder) linkInterproc() {
	// retBindOf maps a call point to its return-site point.
	retBindOf := map[ir.PointID]ir.PointID{}
	for _, pt := range b.prog.Points {
		if rb, ok := pt.Cmd.(ir.RetBind); ok {
			retBindOf[rb.CallPt] = pt.ID
		}
	}
	for _, pt := range b.prog.Points {
		if _, ok := pt.Cmd.(ir.Call); !ok {
			continue
		}
		callees := b.src.Callees(pt.ID)
		for _, p := range callees {
			callee := b.prog.ProcByID(p)
			for l := range b.src.UseSummary[p] {
				b.addEdge(NodeID(pt.ID), l, NodeID(callee.Entry))
			}
			// Def-summary locations flow in too: stale caller values pass
			// through the callee and are killed by its strong definitions.
			for l := range b.src.DefSummary[p] {
				b.addEdge(NodeID(pt.ID), l, NodeID(callee.Entry))
			}
		}
		// An indirect call can have callees with different access sets. The
		// return site defines every location any callee may access, and the
		// caller's SSA makes that definition shadow the pre-call value — so
		// for a location some callee does NOT access, the pre-call value
		// must flow call→return-site directly: along that callee's path the
		// stale value survives (access-based localization bypasses it
		// around that callee), and no exit edge delivers it. Ret channels
		// are excluded — they arrive exclusively over exit→return-site
		// edges (see initNode).
		if rs, ok := retBindOf[pt.ID]; ok && len(callees) > 1 {
			retChans := map[ir.LocID]bool{}
			for _, p := range callees {
				if rl := b.src.RetChan(p); rl != ir.None {
					retChans[rl] = true
				}
			}
			accAll := map[ir.LocID]bool{}
			for _, p := range callees {
				for l := range b.src.UseSummary[p] {
					accAll[l] = true
				}
				for l := range b.src.DefSummary[p] {
					accAll[l] = true
				}
			}
			for l := range accAll {
				if retChans[l] {
					continue
				}
				for _, p := range callees {
					if !b.src.UseSummary[p][l] && !b.src.DefSummary[p][l] {
						b.addEdge(NodeID(pt.ID), l, NodeID(rs))
						break
					}
				}
			}
		}
	}
	for p, sites := range b.src.RetSites {
		callee := b.prog.Procs[p]
		exit := NodeID(callee.Exit)
		for _, rs := range sites {
			for l := range b.src.UseSummary[p] {
				b.addEdge(exit, l, NodeID(rs))
			}
			for l := range b.src.DefSummary[p] {
				b.addEdge(exit, l, NodeID(rs))
			}
			if rl := b.src.RetChan(ir.ProcID(p)); rl != ir.None {
				b.addEdge(exit, rl, NodeID(rs))
			}
		}
	}
}

// bypass applies the Section 5 optimization until convergence: a node that
// merely relays a location l (it is in l's dependency chains through
// linkage only, neither defining nor using l itself) is spliced out,
// connecting its predecessors directly to its successors.
func (b *builder) bypass() {
	work := make([]NodeID, 0, len(b.passSets))
	inWork := make([]bool, len(b.passSets))
	for n := range b.passSets {
		if len(b.passSets[n]) > 0 {
			work = append(work, NodeID(n))
			inWork[n] = true
		}
	}
	rootProc := b.prog.ProcByID(b.prog.Main)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n] = false
		if b.g.Widen[n] {
			continue // widening nodes must stay on their cycles
		}
		if n == NodeID(rootProc.Exit) {
			continue // the root exit stays observable (final program state)
		}
		if n == NodeID(rootProc.Entry) {
			continue // the root entry injects the initial state
		}
		for l := range b.passSets[n] {
			var preds, succs []NodeID
			if b.inSet[n] != nil {
				for _, p := range b.inSet[n][l] {
					if p != n {
						preds = append(preds, p)
					}
				}
			}
			if b.outSet[n] != nil {
				for _, s := range b.outSet[n][l] {
					if s != n {
						succs = append(succs, s)
					}
				}
			}
			if len(preds)*len(succs) > b.opt.MaxSpliceFanout {
				continue
			}
			// Remove the relay (including any self-loop, which is an
			// identity cycle at a pure relay) and reconnect; a pred that is
			// also a succ becomes a self-edge carrying the collapsed cycle.
			for _, p := range preds {
				b.delEdge(p, l, n)
			}
			for _, s := range succs {
				b.delEdge(n, l, s)
			}
			if b.outSet[n] != nil && b.outSet[n][l] != nil {
				b.delEdge(n, l, n)
			}
			requeue := func(m NodeID) {
				if !inWork[m] && b.passSets[m][l] {
					work = append(work, m)
					inWork[m] = true
				}
			}
			for _, p := range preds {
				for _, s := range succs {
					b.addEdge(p, l, s)
					requeue(s)
				}
				requeue(p)
			}
			b.g.SplicedTriples += len(preds) + len(succs)
			delete(b.passSets[n], l)
			delete(b.defSets[n], l)
			delete(b.useSets[n], l)
		}
	}
}

// finalize converts edge sets to slices and fills the solver-facing tables.
func (b *builder) finalize(info *cfg.Info) {
	g := b.g
	n := g.NumNodes()
	g.Defs = make([][]ir.LocID, n)
	g.Uses = make([][]ir.LocID, n)
	g.Prio = make([]int, n)
	g.out = make([]map[ir.LocID][]NodeID, n)
	for i := 0; i < n; i++ {
		g.Defs[i] = sortedLocs(b.defSets[i])
		g.Uses[i] = sortedLocs(b.useSets[i])
		if i < g.PointCount {
			g.Prio[i] = info.Prio[i] * 2
		} else {
			g.Prio[i] = info.Prio[g.Phis[i-g.PointCount].At]*2 - 1
		}
		if b.outSet[i] == nil {
			continue
		}
		g.out[i] = make(map[ir.LocID][]NodeID, len(b.outSet[i]))
		for l, succs := range b.outSet[i] {
			if len(succs) == 0 {
				continue
			}
			sort.Slice(succs, func(a, c int) bool { return succs[a] < succs[c] })
			g.out[i][l] = succs
			g.EdgeCount += len(succs)
		}
	}
}

func sortedLocs(set map[ir.LocID]bool) []ir.LocID {
	if len(set) == 0 {
		return nil
	}
	out := make([]ir.LocID, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
