// Package dug builds the data-dependency graph (def-use graph) that drives
// the sparse analysis: the relation ↝ ⊆ C × L# × C of Definition 3/4,
// approximated by D̂/Û from the pre-analysis (Definition 5) and generated
// with the standard SSA algorithm as Section 5 describes.
//
// Construction is per-procedure: a call is a definition (resp. use) of the
// locations its callees may define (resp. use), the entry of a procedure
// defines every location the body uses, and the exit uses every location the
// body defines; dependencies then link call sites to entries and exits to
// return sites. The chain-bypass optimization of Section 5 splices nodes
// that neither define nor use a location out of its dependency chains, which
// the paper reports is what makes the interprocedural analysis actually
// sparse.
//
// The graph is laid out for the solver hot path: per-node D̂/Û are sorted
// dense-ID slices sharing contiguous backing arrays, and the successor
// relation is a two-level CSR index (per-node sorted location keys with an
// (offset, len) row of successors each) that workers share read-only. The
// builder itself stages dependency triples into a flat slice and sorts them
// once instead of deduplicating through per-⟨node, loc⟩ maps.
package dug

import (
	"slices"
	"sort"
	"sync"

	"sparrow/internal/callgraph"
	"sparrow/internal/cfg"
	"sparrow/internal/ir"
	"sparrow/internal/metrics"
	"sparrow/internal/par"
	"sparrow/internal/prean"
	rt "sparrow/internal/runtime"
	"sparrow/internal/sem"
	"sparrow/internal/ssa"
)

// NodeID identifies a node of the def-use graph: IDs below PointCount are
// control points, the rest are phi nodes.
type NodeID int32

// Phi is an SSA join node for one location, placed at a control point.
type Phi struct {
	At  ir.PointID
	Loc ir.LocID
}

// Options configures graph construction.
type Options struct {
	// Bypass enables the interprocedural chain-bypass optimization.
	Bypass bool
	// MaxSpliceFanout bounds |preds|×|succs| of a splice to avoid edge
	// blowup (0 uses the default of 256).
	MaxSpliceFanout int
	// Workers fans the per-point D̂/Û computation and the per-procedure
	// SSA passes (dominators, phi placement, renaming) across this many
	// goroutines. Values <= 1 build sequentially. The graph is identical
	// for every worker count: parallel phases stage into per-point or
	// per-procedure slots and are merged in a fixed order.
	Workers int
	// Metrics, when non-nil, receives the finished graph's size counters
	// (nodes, dependency triples, phis, spliced triples, ΣD̂/ΣÛ) — the
	// paper's first-class sparse-representation scalability metric.
	Metrics *metrics.Collector
	// EntryMarks, when non-nil, lists per procedure the locations its Entry
	// transfer marks possibly-uninitialized (sem.Sem.EntryMarks). Marked
	// locations are genuine entry definitions, not bypassable linkage: they
	// are kept out of the entry's pass set so the chain bypass never splices
	// the entry out of their dependency chains.
	EntryMarks func(p ir.ProcID) []ir.LocID
	// Budget is the cooperative cancellation token (internal/runtime),
	// checkpointed between build stages on the coordinating goroutine. A
	// half-built graph is useless, so a breach aborts via rt.Abort
	// (recovered at the core boundary). nil is free.
	Budget *rt.Budget
}

// Graph is the def-use graph.
type Graph struct {
	Prog       *ir.Program
	PointCount int
	Phis       []Phi
	// Defs[n]/Uses[n] are D̂/Û per node (post-bypass), sorted. The
	// per-node slices are views into two shared backing arrays.
	Defs [][]ir.LocID
	Uses [][]ir.LocID
	// Widen[n] marks per-location widening nodes: phis at loop heads and
	// entries of recursive procedures.
	Widen []bool
	// Prio[n] is the worklist priority.
	Prio []int
	// EdgeCount is the number of ⟨from, loc, to⟩ triples.
	EdgeCount int
	// SplicedEdges counts edges removed+added by the bypass optimization.
	SplicedTriples int

	// CSR successor index: node n's rows live at edgeLocs[edgeRow[n]:
	// edgeRow[n+1]] (sorted location keys); key index k's successors are
	// succs[succOff[k]:succOff[k+1]] (sorted). Shared read-only by all
	// solver workers.
	edgeLocs []ir.LocID
	edgeRow  []int32
	succOff  []int32
	succs    []NodeID

	partOnce sync.Once
	part     *Partition
}

// NumNodes returns the node count (points + phis).
func (g *Graph) NumNodes() int { return g.PointCount + len(g.Phis) }

// IsPhi reports whether n is a phi node.
func (g *Graph) IsPhi(n NodeID) bool { return int(n) >= g.PointCount }

// PhiOf returns the phi descriptor of a phi node.
func (g *Graph) PhiOf(n NodeID) Phi { return g.Phis[int(n)-g.PointCount] }

// PointOf returns the control point of a point node.
func (g *Graph) PointOf(n NodeID) ir.PointID { return ir.PointID(n) }

// Succs returns the dependency successors of n on location l (binary search
// over n's CSR row keys). Solvers iterating Defs[n] in order should prefer
// the Out cursor, which advances in lockstep instead of searching.
func (g *Graph) Succs(n NodeID, l ir.LocID) []NodeID {
	lo, hi := g.edgeRow[n], g.edgeRow[n+1]
	row := g.edgeLocs[lo:hi]
	i, j := 0, len(row)
	for i < j {
		mid := int(uint(i+j) >> 1)
		if row[mid] < l {
			i = mid + 1
		} else {
			j = mid
		}
	}
	if i < len(row) && row[i] == l {
		k := int(lo) + i
		return g.succs[g.succOff[k]:g.succOff[k+1]]
	}
	return nil
}

// OutCursor walks one node's successor rows in ascending location order.
// Seek must be called with non-decreasing locations — exactly the order of
// Defs[n] — and amortizes to O(1) per call where Succs pays a binary search.
type OutCursor struct {
	locs  []ir.LocID
	off   []int32
	succs []NodeID
	i     int
}

// Out returns a successor cursor for n.
func (g *Graph) Out(n NodeID) OutCursor {
	lo, hi := g.edgeRow[n], g.edgeRow[n+1]
	return OutCursor{locs: g.edgeLocs[lo:hi], off: g.succOff[lo : hi+1], succs: g.succs}
}

// Seek advances to location l and returns its successor row (nil if none).
func (c *OutCursor) Seek(l ir.LocID) []NodeID {
	for c.i < len(c.locs) && c.locs[c.i] < l {
		c.i++
	}
	if c.i < len(c.locs) && c.locs[c.i] == l {
		return c.succs[c.off[c.i]:c.off[c.i+1]]
	}
	return nil
}

// Range visits every dependency triple until f returns false, in
// (from, loc, to) order.
func (g *Graph) Range(f func(from NodeID, l ir.LocID, to NodeID) bool) {
	for n := 0; n+1 < len(g.edgeRow); n++ {
		for k := g.edgeRow[n]; k < g.edgeRow[n+1]; k++ {
			l := g.edgeLocs[k]
			for _, t := range g.succs[g.succOff[k]:g.succOff[k+1]] {
				if !f(NodeID(n), l, t) {
					return
				}
			}
		}
	}
}

// AvgDefUse returns the average |D̂(c)| and |Û(c)| over statement points
// (Table 2/3's D̂(c) and Û(c) columns).
func (g *Graph) AvgDefUse() (avgD, avgU float64) {
	n := 0
	var sd, su int
	for id := 0; id < g.PointCount; id++ {
		switch g.Prog.Point(ir.PointID(id)).Cmd.(type) {
		case ir.Entry, ir.Exit, ir.Skip:
			continue
		}
		n++
		sd += len(g.Defs[id])
		su += len(g.Uses[id])
	}
	if n == 0 {
		return 0, 0
	}
	return float64(sd) / float64(n), float64(su) / float64(n)
}

// Source abstracts what graph construction needs from an analysis design,
// so the same builder serves the non-relational (locations) and relational
// (packs) instantiations. The ID space of "locations" is whatever the
// DefsUses/summaries speak — ir.LocID for intervals, pack IDs for octagons.
type Source struct {
	Prog     *ir.Program
	CG       *callgraph.Graph
	Callees  func(ir.PointID) []ir.ProcID
	RetSites [][]ir.PointID
	// DefsUsesAppend appends the members of the command-local D̂(c)/Û(c)
	// to defs/uses (possibly with duplicates — the builder deduplicates)
	// and returns the extended slices. Must be safe for concurrent calls:
	// the builder fans it out across workers.
	DefsUsesAppend func(pt *ir.Point, defs, uses []ir.LocID) ([]ir.LocID, []ir.LocID)
	// AlwaysKills returns D_always(c); required only by BuildDefUseChains.
	AlwaysKills func(pt *ir.Point) sem.LocSet
	// DefSummary/UseSummary are the transitive per-procedure summaries as
	// sorted LocID slices.
	DefSummary [][]ir.LocID
	UseSummary [][]ir.LocID
	// RetChan maps a procedure to its return-channel ID (ir.None if void).
	RetChan func(p ir.ProcID) ir.LocID
	// EntryMarks mirrors Options.EntryMarks in the Source's own ID space;
	// Build copies it from the options for the interval instantiation.
	EntryMarks func(p ir.ProcID) []ir.LocID
}

// IntervalSource adapts the non-relational pre-analysis to a Source.
func IntervalSource(prog *ir.Program, pre *prean.Result) *Source {
	s := &sem.Sem{Prog: prog, Callees: pre.CalleesOf, InCycle: pre.CG.InCycle}
	return &Source{
		Prog:     prog,
		CG:       pre.CG,
		Callees:  pre.CalleesOf,
		RetSites: pre.RetSites,
		DefsUsesAppend: func(pt *ir.Point, defs, uses []ir.LocID) ([]ir.LocID, []ir.LocID) {
			return s.DefsUsesAppend(pt, pre.Mem, defs, uses)
		},
		AlwaysKills: func(pt *ir.Point) sem.LocSet {
			return s.AlwaysKills(pt, pre.Mem)
		},
		DefSummary: pre.DefSummary,
		UseSummary: pre.UseSummary,
		RetChan:    func(p ir.ProcID) ir.LocID { return prog.ProcByID(p).RetLoc },
	}
}

// triple is one staged dependency edge ⟨from, loc, to⟩.
type triple struct {
	from NodeID
	loc  ir.LocID
	to   NodeID
}

// adjRows is one node's adjacency during construction: parallel sorted
// location keys and neighbor rows, built once from the staged triples. The
// bypass optimization mutates row contents but (invariant) never needs a
// new location key — a splice only reconnects nodes that already carry
// edges on the spliced location.
type adjRows struct {
	locs []ir.LocID
	rows [][]NodeID
}

// find returns the index of l in the sorted key array, or -1.
func (a *adjRows) find(l ir.LocID) int {
	lo, hi := 0, len(a.locs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.locs[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.locs) && a.locs[lo] == l {
		return lo
	}
	return -1
}

// arena hands out stable []ir.LocID views backed by large shared blocks, so
// the three small per-node access sets don't cost one allocation each.
type arena struct{ buf []ir.LocID }

func (a *arena) place(s []ir.LocID) []ir.LocID {
	if len(s) == 0 {
		return nil
	}
	if len(a.buf)+len(s) > cap(a.buf) {
		n := 1 << 14
		if len(s) > n {
			n = len(s)
		}
		a.buf = make([]ir.LocID, 0, n)
	}
	off := len(a.buf)
	a.buf = append(a.buf, s...)
	return a.buf[off:len(a.buf):len(a.buf)]
}

// builder carries construction state.
type builder struct {
	prog *ir.Program
	src  *Source
	opt  Options

	g *Graph
	// defs/uses/pass are the per-node D̂/Û/linkage-only sets as sorted
	// deduplicated slices (pass members are the bypass candidates). The
	// bypass optimization shrinks them in place.
	defs [][]ir.LocID
	uses [][]ir.LocID
	pass [][]ir.LocID
	// triples stages dependency edges flat, duplicates included; one sort
	// in buildAdjacency replaces the per-edge map dedup of earlier layouts.
	triples []triple
	out, in []adjRows
}

// Build constructs the def-use graph of prog from the non-relational
// pre-analysis result.
func Build(prog *ir.Program, pre *prean.Result, opt Options) *Graph {
	src := IntervalSource(prog, pre)
	src.EntryMarks = opt.EntryMarks
	return BuildFrom(src, opt)
}

// BuildFrom constructs the def-use graph from an arbitrary Source.
func BuildFrom(src *Source, opt Options) *Graph {
	prog := src.Prog
	if opt.MaxSpliceFanout == 0 {
		opt.MaxSpliceFanout = 256
	}
	b := &builder{
		prog: prog,
		src:  src,
		opt:  opt,
		g:    &Graph{Prog: prog, PointCount: len(prog.Points)},
	}
	opt.Budget.Checkpoint(rt.PhaseDUG)
	b.initNodes()
	opt.Budget.Checkpoint(rt.PhaseDUG)
	info := cfg.Compute(prog, src.CG, src.Callees)
	// Point nodes inherit the solver widening points (loop heads, recursive
	// entries and return sites); phis get theirs during placement. Widening
	// nodes are also pinned by the bypass optimization so that every
	// dependency cycle keeps a widening point.
	for i := range prog.Points {
		if info.Widen[i] {
			b.g.Widen[i] = true
		}
	}
	// Stage the per-procedure SSA passes (dominators, phi placement,
	// renaming) — each reads only the shared per-point tables, so they fan
	// out — then merge in procedure order, which assigns phi node IDs
	// exactly as a sequential build would.
	staged := make([]*procBuild, len(prog.Procs))
	par.For(len(prog.Procs), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			staged[i] = b.stageProc(prog.Procs[i], info)
		}
	})
	opt.Budget.Checkpoint(rt.PhaseDUG)
	for i, pr := range prog.Procs {
		b.mergeProc(pr, staged[i])
	}
	opt.Budget.Checkpoint(rt.PhaseDUG)
	b.linkInterproc()
	opt.Budget.Checkpoint(rt.PhaseDUG)
	b.buildAdjacency()
	opt.Budget.Checkpoint(rt.PhaseDUG)
	if opt.Bypass {
		b.bypass()
	}
	opt.Budget.Checkpoint(rt.PhaseDUG)
	b.finalize(info)
	b.g.flushMetrics(opt.Metrics)
	return b.g
}

// flushMetrics records the finished graph's size counters.
func (g *Graph) flushMetrics(col *metrics.Collector) {
	if col == nil {
		return
	}
	col.Add(metrics.CtrDUGNodes, int64(g.NumNodes()))
	col.Add(metrics.CtrDUGEdges, int64(g.EdgeCount))
	col.Add(metrics.CtrDUGPhis, int64(len(g.Phis)))
	col.Add(metrics.CtrDUGSpliced, int64(g.SplicedTriples))
	var defs, uses int64
	for n := range g.Defs {
		defs += int64(len(g.Defs[n]))
		uses += int64(len(g.Uses[n]))
	}
	col.Add(metrics.CtrDUGDefs, defs)
	col.Add(metrics.CtrDUGUses, uses)
}

// ensureNode grows the per-node tables to cover node n.
func (b *builder) ensureNode(n NodeID) {
	for len(b.defs) <= int(n) {
		b.defs = append(b.defs, nil)
		b.uses = append(b.uses, nil)
		b.pass = append(b.pass, nil)
		b.g.Widen = append(b.g.Widen, false)
	}
}

// initScratch carries one worker's reusable buffers through initNode.
type initScratch struct {
	ownD, ownU []ir.LocID // command-local D̂/Û
	d, u, p    []ir.LocID // accumulated sets, duplicates allowed
	ret        []ir.LocID // return channels of a RetBind's callees
	ar         arena
}

// initNodes computes the per-point D̂/Û including interprocedural linkage
// sets, and records which memberships are linkage-only (bypassable). Each
// point writes only its own node's tables, so the sweep fans out across
// workers after the tables are grown to their final point count.
func (b *builder) initNodes() {
	b.ensureNode(NodeID(len(b.prog.Points) - 1))
	par.For(len(b.prog.Points), b.opt.Workers, func(lo, hi int) {
		var sc initScratch
		for i := lo; i < hi; i++ {
			b.initNode(b.prog.Points[i], &sc)
		}
	})
}

// initNode fills the D̂/Û/pass tables of one point.
func (b *builder) initNode(pt *ir.Point, sc *initScratch) {
	n := NodeID(pt.ID)
	ownD, ownU := b.src.DefsUsesAppend(pt, sc.ownD[:0], sc.ownU[:0])
	ownD, ownU = ir.DedupLocs(ownD), ir.DedupLocs(ownU)
	sc.ownD, sc.ownU = ownD, ownU
	d := append(sc.d[:0], ownD...)
	u := append(sc.u[:0], ownU...)
	p := sc.p[:0]
	// Interprocedural linkage (Section 5): a call uses everything its
	// callees access — including the locations they may (weakly or
	// spuriously) define, so that stale caller values flow *through*
	// the callee and are killed by its strong definitions rather than
	// rejoined at the return site. Entries define what flows in, exits
	// use what the body defined, return sites define the callee-final
	// values they receive from the exit.
	switch c := pt.Cmd.(type) {
	case ir.Call:
		// The call both uses and defines (relays) everything its
		// callees access: its definition values are the identity on the
		// caller's reaching values (plus the formal bindings), carried
		// into the callee entry by the call→entry edges.
		for _, pr := range b.src.Callees(pt.ID) {
			for _, summ := range [2][]ir.LocID{b.src.UseSummary[pr], b.src.DefSummary[pr]} {
				for _, l := range summ {
					if !ir.LocsContain(ownU, l) && !ir.LocsContain(ownD, l) {
						p = append(p, l)
					}
					u = append(u, l)
					d = append(d, l)
				}
			}
		}
	case ir.Entry:
		pr := b.prog.ProcByID(pt.Proc)
		if pr.Entry == pt.ID {
			for _, summ := range [2][]ir.LocID{b.src.UseSummary[pt.Proc], b.src.DefSummary[pt.Proc]} {
				d = append(d, summ...)
				p = append(p, summ...)
			}
			if b.src.EntryMarks != nil {
				// Marked locations are genuine definitions of the entry
				// transfer (possibly-uninitialized seeds), not relayed
				// linkage: the bypass must not splice the entry out of
				// their chains, so they leave the pass set.
				if marks := b.src.EntryMarks(pt.Proc); len(marks) > 0 {
					p = removeLocs(ir.DedupLocs(p), marks)
				}
			}
		}
	case ir.Exit:
		// The exit both uses and defines (relays) everything the body
		// accessed — not just what it defined. Access-based localization
		// returns the whole accessed slice of the callee memory to the
		// return sites, so a used-but-never-defined location round-trips
		// through the callee and is joined across its call sites; the
		// sparse graph must reproduce exactly that flow, or the sparse
		// fixpoint comes out strictly tighter than the baseline at
		// multi-site callees (breaking Lemma 2 fidelity).
		for _, summ := range [2][]ir.LocID{b.src.UseSummary[pt.Proc], b.src.DefSummary[pt.Proc]} {
			for _, l := range summ {
				if !ir.LocsContain(ownU, l) {
					p = append(p, l)
				}
				u = append(u, l)
				d = append(d, l)
			}
		}
		if rl := b.src.RetChan(pt.Proc); rl != ir.None {
			u = append(u, rl)
			d = append(d, rl)
		}
	case ir.RetBind:
		// Mirror of the exit: the return site defines everything any
		// callee accessed (the localized return memory).
		rets := sc.ret[:0]
		for _, pr := range b.src.Callees(c.CallPt) {
			rl := b.src.RetChan(pr)
			for _, summ := range [2][]ir.LocID{b.src.UseSummary[pr], b.src.DefSummary[pr]} {
				for _, l := range summ {
					if l != rl && !ir.LocsContain(ownD, l) && !ir.LocsContain(ownU, l) {
						p = append(p, l)
					}
					d = append(d, l)
				}
			}
			if rl != ir.None {
				rets = append(rets, rl)
			}
		}
		sc.ret = rets
		// The return channel must arrive exclusively over the
		// exit→return-site edge; caller-side SSA wiring of it would
		// join stale pre-call values into the delivered result.
		if len(rets) > 0 {
			u = removeLocs(ir.DedupLocs(u), ir.DedupLocs(rets))
		}
	}
	d, u, p = ir.DedupLocs(d), ir.DedupLocs(u), ir.DedupLocs(p)
	b.defs[n] = sc.ar.place(d)
	b.uses[n] = sc.ar.place(u)
	b.pass[n] = sc.ar.place(p)
	sc.d, sc.u, sc.p = d, u, p
}

// removeLocs deletes the members of sorted rem from sorted s in place.
func removeLocs(s, rem []ir.LocID) []ir.LocID {
	if len(rem) == 0 {
		return s
	}
	out := s[:0]
	j := 0
	for _, l := range s {
		for j < len(rem) && rem[j] < l {
			j++
		}
		if j < len(rem) && rem[j] == l {
			continue
		}
		out = append(out, l)
	}
	return out
}

// removeLoc deletes l from the sorted set s in place.
func removeLoc(s []ir.LocID, l ir.LocID) []ir.LocID {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s) || s[lo] != l {
		return s
	}
	copy(s[lo:], s[lo+1:])
	return s[:len(s)-1]
}

// procBuild is the staged output of one procedure's SSA pass. Phi nodes are
// procedure-local (index into phis); edges reference them through negative
// NodeIDs until the merge assigns global IDs. Staging keeps the per-procedure
// passes free of shared writes so they can run on separate goroutines.
type procBuild struct {
	recursive bool
	phis      []Phi
	phiWiden  []bool
	edges     []stagedEdge
}

type stagedEdge struct {
	from NodeID // >= 0: point node; < 0: local phi ref
	loc  ir.LocID
	to   NodeID
}

// phiRef encodes local phi index i as a negative NodeID placeholder.
func phiRef(i int) NodeID { return NodeID(-1 - i) }

// stageProc runs per-location SSA over one procedure: phi placement at
// iterated dominance frontiers of definition sites, then a single renaming
// walk over the dominator tree collecting def→use dependency edges. It only
// reads the shared per-point tables (complete after initNodes), so stages
// for different procedures are safe to run concurrently.
func (b *builder) stageProc(pr *ir.Proc, info *cfg.Info) *procBuild {
	if len(pr.Points) == 0 || pr.Entry == ir.None {
		return nil
	}
	dom := ssa.Compute(b.prog, pr)
	heads := cfg.LoopHeads(b.prog, pr)
	pb := &procBuild{recursive: b.src.CG.InCycle(pr.ID)}

	// Collect tracked locations and their definition sites (RPO indices).
	defSites := map[ir.LocID][]int{}
	for i, id := range dom.Order {
		for _, l := range b.defs[id] {
			defSites[l] = append(defSites[l], i)
		}
	}
	// Deterministic iteration order over locations.
	locs := make([]ir.LocID, 0, len(defSites))
	for l := range defSites {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })

	// Phi placement.
	phiAt := make([]map[ir.LocID]NodeID, len(dom.Order))
	for _, l := range locs {
		for _, i := range dom.IteratedFrontier(defSites[l]) {
			pid := dom.Order[i]
			n := phiRef(len(pb.phis))
			pb.phis = append(pb.phis, Phi{At: pid, Loc: l})
			pb.phiWiden = append(pb.phiWiden, heads[pid])
			if phiAt[i] == nil {
				phiAt[i] = map[ir.LocID]NodeID{}
			}
			phiAt[i][l] = n
		}
	}

	addEdge := func(from NodeID, l ir.LocID, to NodeID) {
		pb.edges = append(pb.edges, stagedEdge{from: from, loc: l, to: to})
	}

	// Renaming: one preorder walk of the dominator tree with a stack per
	// location.
	stacks := map[ir.LocID][]NodeID{}
	top := func(l ir.LocID) (NodeID, bool) {
		s := stacks[l]
		if len(s) == 0 {
			return 0, false
		}
		return s[len(s)-1], true
	}
	var visit func(i int)
	visit = func(i int) {
		pid := dom.Order[i]
		n := NodeID(pid)
		var pushed []ir.LocID
		// Phis first: they join the incoming paths and dominate the point's
		// own use/def.
		phiLocs := make([]ir.LocID, 0, len(phiAt[i]))
		for l := range phiAt[i] {
			phiLocs = append(phiLocs, l)
		}
		sort.Slice(phiLocs, func(a, c int) bool { return phiLocs[a] < phiLocs[c] })
		for _, l := range phiLocs {
			stacks[l] = append(stacks[l], phiAt[i][l])
			pushed = append(pushed, l)
		}
		// Uses read the value reaching the point (after phis).
		for _, l := range b.uses[n] {
			if d, ok := top(l); ok {
				addEdge(d, l, n)
			}
		}
		// Defs kill for dominated points. (Weak definitions are also uses,
		// so their incoming value still flows — Definition 3's treatment of
		// may-kills.)
		for _, l := range b.defs[n] {
			stacks[l] = append(stacks[l], n)
			pushed = append(pushed, l)
		}
		// Feed phi inputs of CFG successors.
		for _, s := range b.prog.Point(pid).Succs {
			si, ok := dom.Index[s]
			if !ok {
				continue
			}
			for l, ph := range phiAt[si] {
				if d, ok := top(l); ok {
					addEdge(d, l, ph)
				}
			}
		}
		for _, c := range dom.Children[i] {
			visit(c)
		}
		for _, l := range pushed {
			stacks[l] = stacks[l][:len(stacks[l])-1]
		}
	}
	visit(0)
	return pb
}

// mergeProc folds one staged procedure into the shared builder state,
// assigning global phi NodeIDs. Called in procedure order, it numbers phis
// exactly as the former sequential per-procedure loop did.
func (b *builder) mergeProc(pr *ir.Proc, pb *procBuild) {
	if pb == nil {
		return
	}
	if pb.recursive {
		b.g.Widen[pr.Entry] = true
	}
	base := NodeID(b.g.PointCount + len(b.g.Phis))
	for i, ph := range pb.phis {
		n := base + NodeID(i)
		b.g.Phis = append(b.g.Phis, ph)
		b.ensureNode(n)
		// One allocation carries both singleton sets; bypass never touches
		// phi sets (their pass set is empty), but keep them separable.
		s := []ir.LocID{ph.Loc, ph.Loc}
		b.defs[n] = s[:1:1]
		b.uses[n] = s[1:2:2]
		if pb.phiWiden[i] {
			b.g.Widen[n] = true
		}
	}
	resolve := func(n NodeID) NodeID {
		if n < 0 {
			return base + NodeID(-1-int(n))
		}
		return n
	}
	for _, e := range pb.edges {
		b.addEdge(resolve(e.from), e.loc, resolve(e.to))
	}
}

// addEdge stages the dependency triple ⟨from, l, to⟩. Duplicates are fine —
// the staged triples are sorted and deduplicated once when the adjacency
// rows are built. Self-edges are kept: SSA renaming never produces them, but
// the bypass optimization can collapse a spurious interprocedural feedback
// cycle (callee effect → return site → another call site → callee) onto a
// single transfer node, and the solver must keep iterating that cycle
// exactly as the dense analysis does.
func (b *builder) addEdge(from NodeID, l ir.LocID, to NodeID) {
	b.triples = append(b.triples, triple{from: from, loc: l, to: to})
}

func containsNode(s []NodeID, n NodeID) bool {
	for _, m := range s {
		if m == n {
			return true
		}
	}
	return false
}

// removeNode deletes the first occurrence of n (order is irrelevant: the
// rows are sorted in finalize).
func removeNode(s []NodeID, n NodeID) []NodeID {
	for i, m := range s {
		if m == n {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// linkInterproc adds the call→entry and exit→return-site dependencies.
func (b *builder) linkInterproc() {
	// retBindOf maps a call point to its return-site point.
	retBindOf := map[ir.PointID]ir.PointID{}
	for _, pt := range b.prog.Points {
		if rb, ok := pt.Cmd.(ir.RetBind); ok {
			retBindOf[rb.CallPt] = pt.ID
		}
	}
	var retChans, accAll []ir.LocID
	for _, pt := range b.prog.Points {
		if _, ok := pt.Cmd.(ir.Call); !ok {
			continue
		}
		callees := b.src.Callees(pt.ID)
		for _, p := range callees {
			callee := b.prog.ProcByID(p)
			for _, l := range b.src.UseSummary[p] {
				b.addEdge(NodeID(pt.ID), l, NodeID(callee.Entry))
			}
			// Def-summary locations flow in too: stale caller values pass
			// through the callee and are killed by its strong definitions.
			for _, l := range b.src.DefSummary[p] {
				b.addEdge(NodeID(pt.ID), l, NodeID(callee.Entry))
			}
		}
		// An indirect call can have callees with different access sets. The
		// return site defines every location any callee may access, and the
		// caller's SSA makes that definition shadow the pre-call value — so
		// for a location some callee does NOT access, the pre-call value
		// must flow call→return-site directly: along that callee's path the
		// stale value survives (access-based localization bypasses it
		// around that callee), and no exit edge delivers it. Ret channels
		// are excluded — they arrive exclusively over exit→return-site
		// edges (see initNode).
		if rs, ok := retBindOf[pt.ID]; ok && len(callees) > 1 {
			retChans, accAll = retChans[:0], accAll[:0]
			for _, p := range callees {
				if rl := b.src.RetChan(p); rl != ir.None {
					retChans = append(retChans, rl)
				}
				accAll = append(accAll, b.src.UseSummary[p]...)
				accAll = append(accAll, b.src.DefSummary[p]...)
			}
			retChans = ir.DedupLocs(retChans)
			accAll = ir.DedupLocs(accAll)
			for _, l := range accAll {
				if ir.LocsContain(retChans, l) {
					continue
				}
				for _, p := range callees {
					if !ir.LocsContain(b.src.UseSummary[p], l) && !ir.LocsContain(b.src.DefSummary[p], l) {
						b.addEdge(NodeID(pt.ID), l, NodeID(rs))
						break
					}
				}
			}
		}
	}
	for p, sites := range b.src.RetSites {
		callee := b.prog.Procs[p]
		exit := NodeID(callee.Exit)
		for _, rs := range sites {
			for _, l := range b.src.UseSummary[p] {
				b.addEdge(exit, l, NodeID(rs))
			}
			for _, l := range b.src.DefSummary[p] {
				b.addEdge(exit, l, NodeID(rs))
			}
			if rl := b.src.RetChan(ir.ProcID(p)); rl != ir.None {
				b.addEdge(exit, rl, NodeID(rs))
			}
		}
	}
}

// buildAdjacency turns the staged triples into per-node adjacency rows:
// counting-sort by from-node, sort each node's group by packed (loc, to)
// keys, deduplicate in place, and carve the out/in rows from exact-size
// backing arrays. This single sort replaces the per-edge map lookups that
// used to dominate the build.
func (b *builder) buildAdjacency() {
	n := b.g.NumNodes()
	ts := b.triples
	b.triples = nil
	b.out = make([]adjRows, n)
	b.in = make([]adjRows, n)

	group := func(ts []triple, key func(t triple) NodeID) (grouped []triple, start []int32) {
		start = make([]int32, n+1)
		for _, t := range ts {
			start[key(t)+1]++
		}
		for i := 0; i < n; i++ {
			start[i+1] += start[i]
		}
		pos := make([]int32, n)
		copy(pos, start[:n])
		grouped = make([]triple, len(ts))
		for _, t := range ts {
			grouped[pos[key(t)]] = t
			pos[key(t)]++
		}
		return grouped, start
	}

	// Out direction, with dedup.
	grouped, start := group(ts, func(t triple) NodeID { return t.from })
	var keys []uint64
	glen := make([]int32, n)
	nLocs, nEdges := 0, 0
	for i := 0; i < n; i++ {
		g := grouped[start[i]:start[i+1]]
		if len(g) == 0 {
			continue
		}
		keys = keys[:0]
		for _, t := range g {
			keys = append(keys, uint64(uint32(t.loc))<<32|uint64(uint32(t.to)))
		}
		slices.Sort(keys)
		m := 0
		prevLoc := ir.LocID(-1)
		for j, k := range keys {
			if j > 0 && k == keys[j-1] {
				continue
			}
			l := ir.LocID(k >> 32)
			g[m] = triple{from: NodeID(i), loc: l, to: NodeID(uint32(k))}
			if l != prevLoc {
				nLocs++
				prevLoc = l
			}
			m++
		}
		glen[i] = int32(m)
		nEdges += m
	}
	b.emitRows(b.out, grouped, start, glen, nLocs, nEdges, false)

	// Compact the deduplicated edge set (reusing the staging array) and
	// build the in direction; no further dedup needed.
	ded := ts[:0]
	for i := 0; i < n; i++ {
		ded = append(ded, grouped[start[i]:start[i]+glen[i]]...)
	}
	grouped, start = group(ded, func(t triple) NodeID { return t.to })
	nLocs = 0
	for i := 0; i < n; i++ {
		g := grouped[start[i]:start[i+1]]
		if len(g) == 0 {
			glen[i] = 0
			continue
		}
		keys = keys[:0]
		for _, t := range g {
			keys = append(keys, uint64(uint32(t.loc))<<32|uint64(uint32(t.from)))
		}
		slices.Sort(keys)
		prevLoc := ir.LocID(-1)
		for j, k := range keys {
			l := ir.LocID(k >> 32)
			g[j] = triple{from: NodeID(uint32(k)), loc: l, to: NodeID(i)}
			if l != prevLoc {
				nLocs++
				prevLoc = l
			}
		}
		glen[i] = int32(len(g))
	}
	b.emitRows(b.in, grouped, start, glen, nLocs, nEdges, true)
}

// emitRows carves adjacency rows out of exact-size backing arrays from
// grouped (per-node, loc-sorted, deduplicated) triples. The backing never
// grows, so the row views stay valid; rows are full-cap'd so a bypass append
// copies out instead of clobbering a neighbor.
func (b *builder) emitRows(dst []adjRows, grouped []triple, start, glen []int32, nLocs, nEdges int, useFrom bool) {
	locsBack := make([]ir.LocID, 0, nLocs)
	rowsBack := make([][]NodeID, 0, nLocs)
	nodeBack := make([]NodeID, 0, nEdges)
	for i := range dst {
		g := grouped[start[i] : start[i]+glen[i]]
		if len(g) == 0 {
			continue
		}
		locOff, rowOff := len(locsBack), len(rowsBack)
		rowStart := len(nodeBack)
		for j, t := range g {
			if j == 0 || t.loc != g[j-1].loc {
				if j > 0 {
					rowsBack = append(rowsBack, nodeBack[rowStart:len(nodeBack):len(nodeBack)])
				}
				rowStart = len(nodeBack)
				locsBack = append(locsBack, t.loc)
			}
			if useFrom {
				nodeBack = append(nodeBack, t.from)
			} else {
				nodeBack = append(nodeBack, t.to)
			}
		}
		rowsBack = append(rowsBack, nodeBack[rowStart:len(nodeBack):len(nodeBack)])
		dst[i] = adjRows{
			locs: locsBack[locOff:len(locsBack):len(locsBack)],
			rows: rowsBack[rowOff:len(rowsBack):len(rowsBack)],
		}
	}
}

// spliceAdd inserts the edge ⟨from, l, to⟩ into the adjacency rows (dedup'd)
// during bypass. The rows for l exist by the splice invariant; the insert
// fallback keeps the builder correct if it is ever violated.
func (b *builder) spliceAdd(from NodeID, l ir.LocID, to NodeID) {
	ri := b.out[from].find(l)
	if ri < 0 {
		ri = insertRow(&b.out[from], l)
	}
	row := b.out[from].rows[ri]
	if containsNode(row, to) {
		return
	}
	b.out[from].rows[ri] = append(row, to)
	ti := b.in[to].find(l)
	if ti < 0 {
		ti = insertRow(&b.in[to], l)
	}
	b.in[to].rows[ti] = append(b.in[to].rows[ti], from)
}

// spliceDel removes the edge ⟨from, l, to⟩ from the adjacency rows.
func (b *builder) spliceDel(from NodeID, l ir.LocID, to NodeID) {
	if ri := b.out[from].find(l); ri >= 0 {
		b.out[from].rows[ri] = removeNode(b.out[from].rows[ri], to)
	}
	if ti := b.in[to].find(l); ti >= 0 {
		b.in[to].rows[ti] = removeNode(b.in[to].rows[ti], from)
	}
}

// insertRow adds an empty row keyed l to a, returning its index.
func insertRow(a *adjRows, l ir.LocID) int {
	lo, hi := 0, len(a.locs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.locs[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Copy out: the key/row arrays are views into shared backing.
	locs := make([]ir.LocID, 0, len(a.locs)+1)
	locs = append(locs, a.locs[:lo]...)
	locs = append(locs, l)
	locs = append(locs, a.locs[lo:]...)
	rows := make([][]NodeID, 0, len(a.rows)+1)
	rows = append(rows, a.rows[:lo]...)
	rows = append(rows, nil)
	rows = append(rows, a.rows[lo:]...)
	a.locs, a.rows = locs, rows
	return lo
}

// bypass applies the Section 5 optimization until convergence: a node that
// merely relays a location l (it is in l's dependency chains through
// linkage only, neither defining nor using l itself) is spliced out,
// connecting its predecessors directly to its successors.
func (b *builder) bypass() {
	work := make([]NodeID, 0, len(b.pass))
	inWork := make([]bool, len(b.pass))
	for n := range b.pass {
		if len(b.pass[n]) > 0 {
			work = append(work, NodeID(n))
			inWork[n] = true
		}
	}
	rootProc := b.prog.ProcByID(b.prog.Main)
	var snap []ir.LocID
	var preds, succs []NodeID
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n] = false
		if b.g.Widen[n] {
			continue // widening nodes must stay on their cycles
		}
		if n == NodeID(rootProc.Exit) {
			continue // the root exit stays observable (final program state)
		}
		if n == NodeID(rootProc.Entry) {
			continue // the root entry injects the initial state
		}
		snap = append(snap[:0], b.pass[n]...)
		for _, l := range snap {
			preds, succs = preds[:0], succs[:0]
			inRow, outRow := b.in[n].find(l), b.out[n].find(l)
			if inRow >= 0 {
				for _, p := range b.in[n].rows[inRow] {
					if p != n {
						preds = append(preds, p)
					}
				}
			}
			if outRow >= 0 {
				for _, s := range b.out[n].rows[outRow] {
					if s != n {
						succs = append(succs, s)
					}
				}
			}
			if len(preds)*len(succs) > b.opt.MaxSpliceFanout {
				continue
			}
			// Remove the relay (including any self-loop, which is an
			// identity cycle at a pure relay) and reconnect; a pred that is
			// also a succ becomes a self-edge carrying the collapsed cycle.
			// Each neighbor's row is found once and both edited in place:
			// drop n, then merge in the opposite side (out[p][l] ∋ s iff
			// in[s][l] ∋ p, so the paired dedup checks agree).
			for _, p := range preds {
				a := &b.out[p]
				ri := a.find(l)
				row := removeNode(a.rows[ri], n)
				for _, s := range succs {
					if !containsNode(row, s) {
						row = append(row, s)
					}
				}
				a.rows[ri] = row
			}
			for _, s := range succs {
				a := &b.in[s]
				ri := a.find(l)
				row := removeNode(a.rows[ri], n)
				for _, p := range preds {
					if !containsNode(row, p) {
						row = append(row, p)
					}
				}
				a.rows[ri] = row
			}
			// The relay's own rows are now fully dead (all preds, succs, and
			// any self-loop removed).
			if inRow >= 0 {
				b.in[n].rows[inRow] = b.in[n].rows[inRow][:0]
			}
			if outRow >= 0 {
				b.out[n].rows[outRow] = b.out[n].rows[outRow][:0]
			}
			requeue := func(m NodeID) {
				if !inWork[m] && ir.LocsContain(b.pass[m], l) {
					work = append(work, m)
					inWork[m] = true
				}
			}
			if len(preds) > 0 {
				for _, s := range succs {
					requeue(s)
				}
			}
			for _, p := range preds {
				requeue(p)
			}
			b.g.SplicedTriples += len(preds) + len(succs)
			b.pass[n] = removeLoc(b.pass[n], l)
			b.defs[n] = removeLoc(b.defs[n], l)
			b.uses[n] = removeLoc(b.uses[n], l)
		}
	}
}

// finalize compacts the access sets into shared backing arrays and builds
// the CSR successor index.
func (b *builder) finalize(info *cfg.Info) {
	g := b.g
	n := g.NumNodes()
	g.Defs = make([][]ir.LocID, n)
	g.Uses = make([][]ir.LocID, n)
	g.Prio = make([]int, n)
	var totD, totU int
	for i := 0; i < n; i++ {
		totD += len(b.defs[i])
		totU += len(b.uses[i])
	}
	defBack := make([]ir.LocID, 0, totD)
	useBack := make([]ir.LocID, 0, totU)
	for i := 0; i < n; i++ {
		if len(b.defs[i]) > 0 {
			off := len(defBack)
			defBack = append(defBack, b.defs[i]...)
			g.Defs[i] = defBack[off:len(defBack):len(defBack)]
		}
		if len(b.uses[i]) > 0 {
			off := len(useBack)
			useBack = append(useBack, b.uses[i]...)
			g.Uses[i] = useBack[off:len(useBack):len(useBack)]
		}
		if i < g.PointCount {
			g.Prio[i] = info.Prio[i] * 2
		} else {
			g.Prio[i] = info.Prio[g.Phis[i-g.PointCount].At]*2 - 1
		}
	}
	var nLocs, nEdges int
	for i := range b.out {
		for ri := range b.out[i].rows {
			if len(b.out[i].rows[ri]) > 0 {
				nLocs++
				nEdges += len(b.out[i].rows[ri])
			}
		}
	}
	g.edgeLocs = make([]ir.LocID, 0, nLocs)
	g.edgeRow = make([]int32, n+1)
	g.succOff = make([]int32, 0, nLocs+1)
	g.succs = make([]NodeID, 0, nEdges)
	for i := 0; i < n; i++ {
		g.edgeRow[i] = int32(len(g.edgeLocs))
		a := &b.out[i]
		for ri, l := range a.locs {
			row := a.rows[ri]
			if len(row) == 0 {
				continue
			}
			slices.Sort(row)
			g.edgeLocs = append(g.edgeLocs, l)
			g.succOff = append(g.succOff, int32(len(g.succs)))
			g.succs = append(g.succs, row...)
			g.EdgeCount += len(row)
		}
	}
	g.edgeRow[n] = int32(len(g.edgeLocs))
	g.succOff = append(g.succOff, int32(len(g.succs)))
}
