package dug

import (
	"testing"

	"sparrow/internal/cgen"
	"sparrow/internal/frontend/lower"
	"sparrow/internal/frontend/parser"
	"sparrow/internal/prean"
)

func buildGraph(t *testing.T, src string, opt Options) *Graph {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := lower.File(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	pre := prean.Run(prog)
	return Build(prog, pre, opt)
}

// checkPartition verifies the structural invariants the parallel solver
// relies on: exact node cover (disjoint memories), topological component
// numbering along every dependency edge, sorted condensation neighbor
// lists, and island consistency.
func checkPartition(t *testing.T, g *Graph) *Partition {
	t.Helper()
	p := g.Partition()
	n := g.NumNodes()
	if len(p.Comp) != n || len(p.LocalIdx) != n {
		t.Fatalf("partition sized %d/%d for %d nodes", len(p.Comp), len(p.LocalIdx), n)
	}
	// Exact cover: every node in exactly one component, at its LocalIdx.
	seen := make([]bool, n)
	for c, nodes := range p.Nodes {
		if len(nodes) == 0 {
			t.Fatalf("component %d empty", c)
		}
		if len(nodes) > p.MaxComp {
			t.Errorf("component %d has %d nodes > MaxComp %d", c, len(nodes), p.MaxComp)
		}
		for i, nd := range nodes {
			if seen[nd] {
				t.Fatalf("node %d in two components", nd)
			}
			seen[nd] = true
			if p.Comp[nd] != int32(c) {
				t.Errorf("node %d: Comp=%d but listed in %d", nd, p.Comp[nd], c)
			}
			if p.LocalIdx[nd] != int32(i) {
				t.Errorf("node %d: LocalIdx=%d but at position %d", nd, p.LocalIdx[nd], i)
			}
		}
	}
	for nd, ok := range seen {
		if !ok {
			t.Errorf("node %d in no component", nd)
		}
	}
	// Every dependency edge respects the topological numbering, and every
	// cross-component edge appears in the condensation (same island).
	for u := 0; u < n; u++ {
		for _, l := range g.Defs[NodeID(u)] {
			for _, v := range g.Succs(NodeID(u), l) {
				cu, cv := p.Comp[u], p.Comp[v]
				if cu > cv {
					t.Errorf("edge %d→%d: components %d→%d against topological order", u, v, cu, cv)
				}
				if cu != cv {
					if !p.HasSucc(cu, cv) {
						t.Errorf("edge %d→%d: condensation lacks %d→%d", u, v, cu, cv)
					}
					if p.Island[cu] != p.Island[cv] {
						t.Errorf("edge %d→%d: crosses islands %d/%d", u, v, p.Island[cu], p.Island[cv])
					}
				}
			}
		}
	}
	// Preds mirrors Succs.
	for c, succs := range p.Succs {
		for _, s := range succs {
			found := false
			for _, q := range p.Preds[s] {
				if q == int32(c) {
					found = true
				}
			}
			if !found {
				t.Errorf("condensation edge %d→%d missing from Preds", c, s)
			}
		}
	}
	if p.NumIslands < 1 && p.NumComps() > 0 {
		t.Errorf("no islands over %d components", p.NumComps())
	}
	return p
}

func TestPartitionInvariants(t *testing.T) {
	srcs := map[string]string{
		"loopy": `
int g;
int main() {
	int i; int s; s = 0;
	for (i = 0; i < 10; i++) { s = s + i; }
	g = s;
	return 0;
}
`,
		"islands": `
int g; int h;
void f() { g = 1; }
void k() { h = 2; }
int main() { f(); k(); return 0; }
`,
		"recursion": `
int g;
int down(int n) { if (n <= 0) { return 0; } return down(n-1); }
int main() { g = down(9); return 0; }
`,
	}
	for name, src := range srcs {
		for _, bypass := range []bool{false, true} {
			g := buildGraph(t, src, Options{Bypass: bypass})
			p := checkPartition(t, g)
			t.Logf("%s bypass=%v: %d comps, max %d, %d islands",
				name, bypass, p.NumComps(), p.MaxComp, p.NumIslands)
		}
	}
}

func TestPartitionGenerated(t *testing.T) {
	for seed := uint64(7); seed < 10; seed++ {
		src := cgen.Generate(cgen.Default(seed, 300))
		g := buildGraph(t, src, Options{Bypass: true})
		checkPartition(t, g)
	}
}

// TestPartitionDeterministic checks that two independent builds of the same
// program partition identically (the parallel solver's canonical schedule
// depends on it).
func TestPartitionDeterministic(t *testing.T) {
	src := cgen.Generate(cgen.Default(42, 300))
	a := checkPartition(t, buildGraph(t, src, Options{Bypass: true, Workers: 1}))
	b := checkPartition(t, buildGraph(t, src, Options{Bypass: true, Workers: 8}))
	if a.NumComps() != b.NumComps() || a.NumIslands != b.NumIslands || a.MaxComp != b.MaxComp {
		t.Fatalf("shape differs: %d/%d/%d vs %d/%d/%d",
			a.NumComps(), a.NumIslands, a.MaxComp, b.NumComps(), b.NumIslands, b.MaxComp)
	}
	for n := range a.Comp {
		if a.Comp[n] != b.Comp[n] || a.LocalIdx[n] != b.LocalIdx[n] {
			t.Fatalf("node %d: comp %d/%d localidx %d/%d",
				n, a.Comp[n], b.Comp[n], a.LocalIdx[n], b.LocalIdx[n])
		}
	}
}
