// Partitioning of the def-use graph for the parallel sparse engine.
//
// The dependency relation ↝ decomposes into strongly-connected components
// (the value cycles that need in-place iteration with widening) whose
// condensation is a DAG, and the DAG in turn splits into weakly-connected
// islands that share no dependency path at all. Both levels are exactly the
// independence the sparse framework exposes: values flow only along ↝, so a
// component's fixpoint depends on nothing but its condensation predecessors,
// and islands are mutually independent outright. The parallel solver
// schedules components over this structure.
package dug

import (
	"fmt"
	"sort"
)

// Partition is the component decomposition of a def-use graph.
type Partition struct {
	// Comp[n] is the component of node n. Components are numbered in a
	// deterministic topological order of the SCC condensation: every
	// dependency edge u→v has Comp[u] <= Comp[v], with equality exactly
	// when u and v share a dependency cycle.
	Comp []int32
	// Nodes[c] lists the nodes of component c in ascending order. The
	// lists partition the node set: every node appears in exactly one
	// (verified at construction — the per-component solver memories are
	// disjoint by this construction).
	Nodes [][]NodeID
	// Succs[c]/Preds[c] are the condensation-DAG neighbors of c, sorted
	// and deduplicated, without self-edges.
	Succs [][]int32
	Preds [][]int32
	// Island[c] identifies the weakly-connected island of component c:
	// components in different islands are joined by no dependency edge in
	// either direction. Islands are numbered by first appearance in
	// component order.
	Island     []int32
	NumIslands int
	// LocalIdx[n] is n's index within Nodes[Comp[n]], a dense
	// per-component numbering for solver-local state.
	LocalIdx []int32
	// MaxComp is the size of the largest component.
	MaxComp int
}

// NumComps returns the number of components.
func (p *Partition) NumComps() int { return len(p.Nodes) }

// Partition returns the (cached) component decomposition of g.
func (g *Graph) Partition() *Partition {
	g.partOnce.Do(func() { g.part = g.computePartition() })
	return g.part
}

// nodeSuccs returns per-node dependency successors, deduplicated across
// locations and sorted (deterministic regardless of map iteration order).
func (g *Graph) nodeSuccs() [][]NodeID {
	n := g.NumNodes()
	out := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		var all []NodeID
		for k := g.edgeRow[i]; k < g.edgeRow[i+1]; k++ {
			all = append(all, g.succs[g.succOff[k]:g.succOff[k+1]]...)
		}
		if len(all) == 0 {
			continue
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		dedup := all[:1]
		for _, t := range all[1:] {
			if t != dedup[len(dedup)-1] {
				dedup = append(dedup, t)
			}
		}
		out[i] = dedup
	}
	return out
}

// computePartition runs an iterative Tarjan SCC pass over the dependency
// edges, renumbers the components topologically, and derives the
// condensation DAG and its weakly-connected islands.
func (g *Graph) computePartition() *Partition {
	n := g.NumNodes()
	succs := g.nodeSuccs()

	// Iterative Tarjan. Completion order assigns SCC ids in reverse
	// topological order; flipping them afterwards yields the topological
	// numbering. Iteration over nodes and successor lists is in fixed
	// ascending order, so the numbering is deterministic.
	const unvisited = -1
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var (
		stack   []int32 // Tarjan node stack
		next    int32   // next DFS index
		numSCCs int32
	)
	type frame struct {
		v  int32
		si int // next successor position
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: int32(root)})
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			if f.si < len(succs[f.v]) {
				w := int32(succs[f.v][f.si])
				f.si++
				switch {
				case index[w] == unvisited:
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				case onStack[w]:
					if index[w] < lowlink[f.v] {
						lowlink[f.v] = index[w]
					}
				}
				continue
			}
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := &dfs[len(dfs)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numSCCs
					if w == v {
						break
					}
				}
				numSCCs++
			}
		}
	}

	k := int(numSCCs)
	p := &Partition{
		Comp:     comp,
		Nodes:    make([][]NodeID, k),
		Succs:    make([][]int32, k),
		Preds:    make([][]int32, k),
		Island:   make([]int32, k),
		LocalIdx: make([]int32, n),
	}
	// Flip to topological numbering: Tarjan completes callees-first, so a
	// cross-component edge u→v finished v's component first.
	for i := range comp {
		comp[i] = numSCCs - 1 - comp[i]
	}
	for i := 0; i < n; i++ {
		c := comp[i]
		p.LocalIdx[i] = int32(len(p.Nodes[c]))
		p.Nodes[c] = append(p.Nodes[c], NodeID(i))
	}
	// The components must partition the node set exactly — the parallel
	// solver relies on per-component memories being disjoint.
	total := 0
	for c := 0; c < k; c++ {
		if len(p.Nodes[c]) == 0 {
			panic(fmt.Sprintf("dug: empty component %d", c))
		}
		total += len(p.Nodes[c])
		if len(p.Nodes[c]) > p.MaxComp {
			p.MaxComp = len(p.Nodes[c])
		}
	}
	if total != n {
		panic(fmt.Sprintf("dug: components cover %d of %d nodes", total, n))
	}

	// Condensation edges (deduplicated, no self-edges) and the union-find
	// over them that yields the weakly-connected islands.
	uf := make([]int32, k)
	for i := range uf {
		uf[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	succSets := make([]map[int32]bool, k)
	for u := 0; u < n; u++ {
		cu := comp[u]
		for _, v := range succs[u] {
			cv := comp[v]
			if cu == cv {
				continue
			}
			if cu > cv {
				panic(fmt.Sprintf("dug: condensation edge %d→%d against topological order", cu, cv))
			}
			if succSets[cu] == nil {
				succSets[cu] = map[int32]bool{}
			}
			succSets[cu][cv] = true
			ru, rv := find(cu), find(cv)
			if ru != rv {
				uf[ru] = rv
			}
		}
	}
	for c := 0; c < k; c++ {
		if len(succSets[c]) == 0 {
			continue
		}
		out := make([]int32, 0, len(succSets[c]))
		for v := range succSets[c] {
			out = append(out, v)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		p.Succs[c] = out
		for _, v := range out {
			p.Preds[v] = append(p.Preds[v], int32(c))
		}
	}
	// Preds arrive in ascending source order already (c sweeps upward).

	island := make(map[int32]int32, k)
	for c := 0; c < k; c++ {
		r := find(int32(c))
		id, ok := island[r]
		if !ok {
			id = int32(len(island))
			island[r] = id
		}
		p.Island[c] = id
	}
	p.NumIslands = len(island)
	return p
}

// HasSucc reports whether dst is a direct condensation successor of src.
func (p *Partition) HasSucc(src, dst int32) bool {
	s := p.Succs[src]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= dst })
	return i < len(s) && s[i] == dst
}
