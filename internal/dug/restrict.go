// Restricted def-use graphs for per-checker (symbol-specific)
// sparsification: given the full graph and a closed location universe, the
// restriction keeps the same node universe but only the dependency
// structure on locations inside the universe.
package dug

import (
	"sparrow/internal/ir"
)

// BuildRestricted filters full down to the locations in keep (sorted,
// deduplicated — an ObservedClosure result). The restricted graph shares
// the node universe, phi descriptors, widening marks, and priorities of the
// full graph; its D̂/Û sets are the full ones intersected with keep and its
// CSR carries exactly the full triples whose location is in keep. Because
// keep is closed under the builder's command-local dependencies, solving
// the restricted graph reproduces the full fixpoint on every kept location
// (nodes whose sets empty out simply stop relaying; phis on dropped
// locations become inert).
//
// The restriction reuses nothing of the staging pipeline: it is a single
// pass over the finished CSR, so building one per checker costs far less
// than a rebuild.
func BuildRestricted(full *Graph, keep []ir.LocID) *Graph {
	nLocs := full.Prog.Locs.Len()
	inKeep := make([]bool, nLocs)
	for _, l := range keep {
		if l >= 0 && int(l) < nLocs {
			inKeep[l] = true
		}
	}
	n := full.NumNodes()
	g := &Graph{
		Prog:           full.Prog,
		PointCount:     full.PointCount,
		Phis:           full.Phis,
		Widen:          full.Widen,
		Prio:           full.Prio,
		SplicedTriples: full.SplicedTriples,
		Defs:           make([][]ir.LocID, n),
		Uses:           make([][]ir.LocID, n),
	}
	// Filter the per-node access sets into fresh shared backing arrays.
	var defsBuf, usesBuf []ir.LocID
	filter := func(buf []ir.LocID, s []ir.LocID) []ir.LocID {
		for _, l := range s {
			if inKeep[l] {
				buf = append(buf, l)
			}
		}
		return buf
	}
	for i := 0; i < n; i++ {
		d0 := len(defsBuf)
		defsBuf = filter(defsBuf, full.Defs[i])
		if len(defsBuf) > d0 {
			g.Defs[i] = defsBuf[d0:len(defsBuf):len(defsBuf)]
		}
		u0 := len(usesBuf)
		usesBuf = filter(usesBuf, full.Uses[i])
		if len(usesBuf) > u0 {
			g.Uses[i] = usesBuf[u0:len(usesBuf):len(usesBuf)]
		}
	}
	// Filter the CSR: keep a node's row key (and its successor run) only
	// when the key location survives. Key order and successor order are
	// inherited, so the restricted CSR satisfies the same invariants the
	// cursor and binary search rely on.
	g.edgeRow = make([]int32, n+1)
	for node := 0; node < n; node++ {
		g.edgeRow[node] = int32(len(g.edgeLocs))
		for k := full.edgeRow[node]; k < full.edgeRow[node+1]; k++ {
			l := full.edgeLocs[k]
			if !inKeep[l] {
				continue
			}
			g.edgeLocs = append(g.edgeLocs, l)
			g.succOff = append(g.succOff, int32(len(g.succs)))
			g.succs = append(g.succs, full.succs[full.succOff[k]:full.succOff[k+1]]...)
		}
	}
	g.edgeRow[n] = int32(len(g.edgeLocs))
	g.succOff = append(g.succOff, int32(len(g.succs)))
	g.EdgeCount = len(g.succs)
	return g
}

// ActiveStats reports the graph's effective size: nodes with a non-empty D̂
// or Û, (from, loc) successor rows, and ⟨from, loc, to⟩ dependency triples.
// On a restricted graph these are the per-checker size counters; on the
// full graph nodes ≈ NumNodes (linkage makes most sets non-empty).
func (g *Graph) ActiveStats() (nodes, rows, triples int) {
	for n := range g.Defs {
		if len(g.Defs[n]) > 0 || len(g.Uses[n]) > 0 {
			nodes++
		}
	}
	return nodes, len(g.edgeLocs), g.EdgeCount
}
