package dug

import (
	"fmt"
	"testing"

	"sparrow/internal/cgen"
	"sparrow/internal/frontend/lower"
	"sparrow/internal/frontend/parser"
	"sparrow/internal/ir"
	"sparrow/internal/prean"
)

// buildSrc builds the graph for generated source (fuzz-corpus member).
func buildFuzz(t *testing.T, seed uint64, opt Options) (*ir.Program, *Graph) {
	t.Helper()
	src := cgen.Generate(cgen.Fuzz(seed, 60))
	f, err := parser.Parse(fmt.Sprintf("fuzz-%d.c", seed), src)
	if err != nil {
		t.Fatalf("seed %d: parse: %v", seed, err)
	}
	prog, err := lower.File(f)
	if err != nil {
		t.Fatalf("seed %d: lower: %v", seed, err)
	}
	return prog, Build(prog, prean.Run(prog), opt)
}

// TestCSRMatchesMapSets is the property test of the CSR flattening: over a
// fuzz corpus (both with and without chain bypass), the CSR-indexed access
// sets and successor rows must exactly equal an independently-collected
// map-based representation, and the three accessors (Range, Succs, Out
// cursor) must agree edge for edge.
func TestCSRMatchesMapSets(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		for _, byp := range []bool{false, true} {
			opt := Options{}
			if byp {
				opt.Bypass = true
			}
			_, g := buildFuzz(t, seed, opt)
			n := g.NumNodes()

			// Collect every triple through Range into map form.
			type edgeKey struct {
				from NodeID
				loc  ir.LocID
			}
			ranged := make(map[edgeKey][]NodeID)
			edges := 0
			g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
				ranged[edgeKey{from, l}] = append(ranged[edgeKey{from, l}], to)
				edges++
				return true
			})
			if edges != g.EdgeCount {
				t.Fatalf("seed %d bypass=%v: Range saw %d edges, EdgeCount=%d", seed, byp, edges, g.EdgeCount)
			}

			for i := 0; i < n; i++ {
				nd := NodeID(i)
				// Access sets must be strictly sorted (sorted + deduped).
				for _, s := range [][]ir.LocID{g.Defs[nd], g.Uses[nd]} {
					for j := 1; j < len(s); j++ {
						if s[j-1] >= s[j] {
							t.Fatalf("seed %d bypass=%v node %d: access set not strictly sorted: %v", seed, byp, i, s)
						}
					}
				}
				// Succs must agree with Range on every defined location, and
				// be empty on locations not defined here.
				cur := g.Out(nd)
				for _, l := range g.Defs[nd] {
					want := ranged[edgeKey{nd, l}]
					got := g.Succs(nd, l)
					if len(got) != len(want) {
						t.Fatalf("seed %d bypass=%v node %d loc %d: Succs=%v Range=%v", seed, byp, i, l, got, want)
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("seed %d bypass=%v node %d loc %d: Succs=%v Range=%v", seed, byp, i, l, got, want)
						}
					}
					// The cursor walks Defs in ascending order — it must see
					// exactly the same row.
					crow := cur.Seek(l)
					if len(crow) != len(got) {
						t.Fatalf("seed %d bypass=%v node %d loc %d: cursor row %v != Succs %v", seed, byp, i, l, crow, got)
					}
					for j := range crow {
						if crow[j] != got[j] {
							t.Fatalf("seed %d bypass=%v node %d loc %d: cursor row %v != Succs %v", seed, byp, i, l, crow, got)
						}
					}
					delete(ranged, edgeKey{nd, l})
				}
			}
			// Every ranged row must have been claimed by some (node, def-loc)
			// pair: an edge on a location its source does not define would be
			// unreachable through the Defs-driven solvers.
			for k, row := range ranged {
				t.Fatalf("seed %d bypass=%v: edge row %v on loc %d of node %d not covered by Defs", seed, byp, row, k.loc, k.from)
			}

			// Edge sources respect the access sets: l ∈ D̂(from). (Targets
			// need not use l — interprocedural linkage edges deliver values
			// to nodes that *redefine* the location, e.g. call→entry.)
			g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
				if !ir.LocsContain(g.Defs[from], l) {
					t.Fatalf("seed %d bypass=%v: edge (%d,%d,%d): loc not in Defs[from]", seed, byp, from, l, to)
				}
				return true
			})
		}
	}
}
