// Graphviz export of the def-use graph, for inspecting the data
// dependencies the sparse analysis runs over (cmd/sparrow -dump-dug).

package dug

import (
	"fmt"
	"io"
	"sort"

	"sparrow/internal/ir"
)

// WriteDot renders the graph in Graphviz dot syntax. Nodes are grouped per
// procedure; phi nodes are drawn as diamonds; edges are labeled with their
// location. maxEdges bounds the output for big graphs (0 = unlimited).
func (g *Graph) WriteDot(w io.Writer, maxEdges int) error {
	bw := &errWriter{w: w}
	bw.printf("digraph dug {\n")
	bw.printf("  node [fontname=\"monospace\", fontsize=9];\n")
	bw.printf("  edge [fontname=\"monospace\", fontsize=8];\n")

	// Emit nodes that participate in at least one edge.
	used := map[NodeID]bool{}
	g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
		used[from] = true
		used[to] = true
		return true
	})
	var nodes []NodeID
	for n := range used {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	byProc := map[ir.ProcID][]NodeID{}
	for _, n := range nodes {
		var proc ir.ProcID
		if g.IsPhi(n) {
			proc = g.Prog.Point(g.PhiOf(n).At).Proc
		} else {
			proc = g.Prog.Point(ir.PointID(n)).Proc
		}
		byProc[proc] = append(byProc[proc], n)
	}
	var procs []ir.ProcID
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })

	for _, p := range procs {
		bw.printf("  subgraph cluster_%d {\n", p)
		bw.printf("    label=%q;\n", g.Prog.ProcByID(p).Name)
		for _, n := range byProc[p] {
			if g.IsPhi(n) {
				ph := g.PhiOf(n)
				bw.printf("    n%d [shape=diamond, label=%q];\n",
					n, fmt.Sprintf("φ(%s)@%d", g.Prog.Locs.String(ph.Loc), ph.At))
			} else {
				pt := g.Prog.Point(ir.PointID(n))
				label := fmt.Sprintf("%d: %s", n, g.Prog.CmdString(pt.Cmd))
				if len(label) > 48 {
					label = label[:45] + "..."
				}
				shape := "box"
				if g.Widen[n] {
					shape = "doubleoctagon"
				}
				bw.printf("    n%d [shape=%s, label=%q];\n", n, shape, label)
			}
		}
		bw.printf("  }\n")
	}

	count := 0
	g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
		if maxEdges > 0 && count >= maxEdges {
			return false
		}
		count++
		bw.printf("  n%d -> n%d [label=%q];\n", from, to, g.Prog.Locs.String(l))
		return true
	})
	if maxEdges > 0 && g.EdgeCount > maxEdges {
		bw.printf("  truncated [shape=plaintext, label=\"(%d more edges)\"];\n", g.EdgeCount-maxEdges)
	}
	bw.printf("}\n")
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
