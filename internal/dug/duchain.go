// Conventional def-use chains (Section 2.6 / Example 5): the propagation
// relation where only *always*-kills block a chain — may-definitions are
// passed over rather than re-joined. The paper shows this relation is
// strictly less precise than its data dependencies even when the def/use
// approximation is safe; BuildDefUseChains exists to reproduce that
// comparison (experiment E6 in DESIGN.md).

package dug

import (
	"math/bits"

	"sparrow/internal/cfg"
	"sparrow/internal/ir"
	"sparrow/internal/prean"
)

// BuildDefUseChains constructs a dependency graph over conventional
// def-use chains: an edge d -(l)-> u exists when a CFG path from d to u
// avoids every always-kill of l. There are no phi nodes; uses join all
// reaching definitions directly.
func BuildDefUseChains(prog *ir.Program, pre *prean.Result, opt Options) *Graph {
	return BuildDefUseChainsFrom(IntervalSource(prog, pre), opt)
}

// BuildDefUseChainsFrom is the Source-generic variant; src.AlwaysKills must
// be set.
func BuildDefUseChainsFrom(src *Source, opt Options) *Graph {
	prog := src.Prog
	if src.AlwaysKills == nil {
		panic("dug: BuildDefUseChains requires Source.AlwaysKills")
	}
	if opt.MaxSpliceFanout == 0 {
		opt.MaxSpliceFanout = 256
	}
	b := &builder{
		prog:   prog,
		src:    src,
		opt:    opt,
		g:      &Graph{Prog: prog, PointCount: len(prog.Points)},
	}
	b.initNodes()
	info := cfg.Compute(prog, src.CG, src.Callees)
	for i := range prog.Points {
		if info.Widen[i] {
			b.g.Widen[i] = true
		}
	}
	for _, pr := range prog.Procs {
		b.buildProcChains(pr)
	}
	b.linkInterproc()
	b.buildAdjacency()
	if opt.Bypass {
		b.bypass()
	}
	b.finalize(info)
	b.g.flushMetrics(opt.Metrics)
	return b.g
}

// buildProcChains runs per-location reaching-definitions over one procedure
// and adds def→use edges for every reaching definition.
func (b *builder) buildProcChains(pr *ir.Proc) {
	if len(pr.Points) == 0 || pr.Entry == ir.None {
		return
	}
	order := cfg.RPO(b.prog, pr)
	idx := make(map[ir.PointID]int, len(order))
	for i, id := range order {
		idx[id] = i
	}
	n := len(order)

	// Widening: without phis, intraprocedural dependency cycles run between
	// the defining points themselves, so every definition inside a CFG
	// cycle is a widening node.
	for _, id := range cfgCycleMembers(b.prog, order, idx) {
		b.g.Widen[id] = true
	}

	// Tracked locations and per-node def/kill.
	defsOf := make([][]ir.LocID, n)
	killsOf := make([]map[ir.LocID]bool, n)
	var locs []ir.LocID
	for i, id := range order {
		defsOf[i] = b.defs[id]
		killsOf[i] = map[ir.LocID]bool(b.src.AlwaysKills(b.prog.Point(id)))
		locs = append(locs, b.defs[id]...)
		locs = append(locs, b.uses[id]...)
	}
	locs = ir.DedupLocs(locs)

	words := (n + 63) / 64
	for _, l := range locs {
		in := make([][]uint64, n)
		out := make([][]uint64, n)
		for i := 0; i < n; i++ {
			in[i] = make([]uint64, words)
			out[i] = make([]uint64, words)
		}
		gen := make([]int, n)
		kill := make([]bool, n)
		anyDef := false
		for i := range order {
			gen[i] = -1
			if ir.LocsContain(defsOf[i], l) {
				gen[i] = i
				anyDef = true
			}
			kill[i] = killsOf[i][l]
		}
		if !anyDef {
			continue
		}
		apply := func(i int) bool {
			changed := false
			for w := range out[i] {
				var v uint64
				if !kill[i] {
					v = in[i][w]
				}
				if gen[i] >= 0 && gen[i]/64 == w {
					v |= 1 << uint(gen[i]%64)
				}
				if v != out[i][w] {
					out[i][w] = v
					changed = true
				}
			}
			return changed
		}
		// Iterate to fixpoint in RPO (monotone bit growth).
		for changed := true; changed; {
			changed = false
			for i, id := range order {
				// IN = union of predecessor OUTs.
				for _, p := range b.prog.Point(id).Preds {
					pi, ok := idx[p]
					if !ok {
						continue
					}
					for w := range in[i] {
						in[i][w] |= out[pi][w]
					}
				}
				if apply(i) {
					changed = true
				}
			}
		}
		// Edges: every reaching definition flows to every use.
		for i, id := range order {
			if !ir.LocsContain(b.uses[id], l) {
				continue
			}
			for w := range in[i] {
				bitsW := in[i][w]
				for bitsW != 0 {
					bit := bitsW & (-bitsW)
					d := w*64 + bits.TrailingZeros64(bit)
					bitsW ^= bit
					b.addEdge(NodeID(order[d]), l, NodeID(id))
				}
			}
		}
	}
}

// cfgCycleMembers returns the points of the procedure that lie on a CFG
// cycle (members of nontrivial SCCs or with self-loops).
func cfgCycleMembers(prog *ir.Program, order []ir.PointID, idx map[ir.PointID]int) []ir.PointID {
	n := len(order)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	var out []ir.PointID
	type frame struct {
		v  int
		ei int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			succs := prog.Point(order[f.v]).Succs
			advanced := false
			for f.ei < len(succs) {
				w, ok := idx[succs[f.ei]]
				f.ei++
				if !ok {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			v := f.v
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				self := false
				for _, s := range prog.Point(order[v]).Succs {
					if si, ok := idx[s]; ok && si == v {
						self = true
					}
				}
				if len(comp) > 1 || self {
					for _, w := range comp {
						out = append(out, order[w])
					}
				}
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				u := dfs[len(dfs)-1].v
				if low[v] < low[u] {
					low[u] = low[v]
				}
			}
		}
	}
	return out
}
