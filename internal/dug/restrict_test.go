package dug

import (
	"testing"

	"sparrow/internal/ir"
	"sparrow/internal/prean"
	"sparrow/internal/sem"
)

// keepSets builds a few representative restriction universes for a program:
// the closed control-seed universe (what every per-checker closure
// contains), a deterministic thin slice of the location table, everything,
// and nothing.
func keepSets(prog *ir.Program, pre *prean.Result, s *sem.Sem) map[string][]ir.LocID {
	var all, thin []ir.LocID
	for l := 0; l < prog.Locs.Len(); l++ {
		all = append(all, ir.LocID(l))
		if l%3 == 0 {
			thin = append(thin, ir.LocID(l))
		}
	}
	return map[string][]ir.LocID{
		"closure": pre.ObservedClosure(prog, s, pre.ControlSeeds(prog, s)),
		"thin":    thin,
		"all":     all,
		"none":    nil,
	}
}

// TestBuildRestrictedSubset is the property test of the graph restriction:
// over a fuzz corpus and several keep universes, the restricted D̂/Û sets
// must be exactly the full sets intersected with the universe, and the
// restricted CSR must carry exactly the full dependency triples whose
// location is kept — order included, so the cursor/binary-search invariants
// carry over.
func TestBuildRestrictedSubset(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		prog, g := buildFuzz(t, seed, Options{Bypass: true})
		pre := prean.Run(prog)
		s := &sem.Sem{Prog: prog, Callees: pre.CalleesOf, InCycle: pre.CG.InCycle}
		for name, keep := range keepSets(prog, pre, s) {
			inKeep := make(map[ir.LocID]bool, len(keep))
			for _, l := range keep {
				inKeep[l] = true
			}
			rg := BuildRestricted(g, keep)
			if rg.NumNodes() != g.NumNodes() || rg.PointCount != g.PointCount {
				t.Fatalf("seed %d %s: node universe changed", seed, name)
			}
			for n := 0; n < g.NumNodes(); n++ {
				nd := NodeID(n)
				checkFiltered := func(what string, full, restr []ir.LocID) {
					want := full[:0:0]
					for _, l := range full {
						if inKeep[l] {
							want = append(want, l)
						}
					}
					if len(want) != len(restr) {
						t.Fatalf("seed %d %s node %d: %s = %v, want %v", seed, name, n, what, restr, want)
					}
					for i := range want {
						if want[i] != restr[i] {
							t.Fatalf("seed %d %s node %d: %s = %v, want %v", seed, name, n, what, restr, want)
						}
					}
				}
				checkFiltered("Defs", g.Defs[nd], rg.Defs[nd])
				checkFiltered("Uses", g.Uses[nd], rg.Uses[nd])
			}
			// Triples: restricted == { (from, loc, to) ∈ full : loc kept },
			// checked both ways through Range plus the Succs accessor.
			type triple struct {
				from NodeID
				loc  ir.LocID
				to   NodeID
			}
			fullSet := map[triple]bool{}
			wantCount := 0
			g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
				fullSet[triple{from, l, to}] = true
				if inKeep[l] {
					wantCount++
				}
				return true
			})
			got := 0
			rg.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
				got++
				if !inKeep[l] {
					t.Fatalf("seed %d %s: restricted triple (%d,%d,%d) outside universe", seed, name, from, l, to)
				}
				if !fullSet[triple{from, l, to}] {
					t.Fatalf("seed %d %s: restricted triple (%d,%d,%d) not in full graph", seed, name, from, l, to)
				}
				for _, s := range rg.Succs(from, l) {
					if !fullSet[triple{from, l, s}] {
						t.Fatalf("seed %d %s: Succs(%d,%d) row member %d not in full graph", seed, name, from, l, s)
					}
				}
				return true
			})
			if got != wantCount || rg.EdgeCount != wantCount {
				t.Fatalf("seed %d %s: restricted triples %d (EdgeCount %d), want %d",
					seed, name, got, rg.EdgeCount, wantCount)
			}
			if rg.EdgeCount > g.EdgeCount {
				t.Fatalf("seed %d %s: restriction grew the graph", seed, name)
			}
		}
	}
}
