package dug

import (
	"strings"
	"testing"

	"sparrow/internal/frontend/lower"
	"sparrow/internal/frontend/parser"
	"sparrow/internal/ir"
	"sparrow/internal/prean"
)

func build(t *testing.T, src string, opt Options) (*ir.Program, *prean.Result, *Graph) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := lower.File(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	pre := prean.Run(prog)
	return prog, pre, Build(prog, pre, opt)
}

func locOf(t *testing.T, prog *ir.Program, name string) ir.LocID {
	t.Helper()
	l, ok := prog.Locs.Lookup(ir.Loc{Kind: ir.LVar, Proc: ir.None, Name: name})
	if !ok {
		t.Fatalf("no global %q", name)
	}
	return l
}

func TestStraightLineChain(t *testing.T) {
	prog, _, g := build(t, `
int a; int b; int c;
int main() { a = 1; b = a; c = b; return 0; }
`, Options{})
	la, lb := locOf(t, prog, "a"), locOf(t, prog, "b")
	// There must be an edge on a from "a := 1" to "b := a" and on b onward.
	foundA, foundB := false, false
	g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
		if g.IsPhi(from) || g.IsPhi(to) {
			return true
		}
		fc := prog.CmdString(prog.Point(ir.PointID(from)).Cmd)
		tc := prog.CmdString(prog.Point(ir.PointID(to)).Cmd)
		if l == la && fc == "a := 1" && tc == "b := a" {
			foundA = true
		}
		if l == lb && fc == "b := a" && tc == "c := b" {
			foundB = true
		}
		return true
	})
	if !foundA || !foundB {
		t.Errorf("expected def-use edges missing (a:%v b:%v)", foundA, foundB)
	}
}

func TestKillBlocksDependency(t *testing.T) {
	prog, _, g := build(t, `
int a; int b;
int main() { a = 1; a = 2; b = a; return 0; }
`, Options{})
	la := locOf(t, prog, "a")
	// "a := 1" must NOT reach "b := a" (killed by a := 2).
	g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
		if l != la || g.IsPhi(from) || g.IsPhi(to) {
			return true
		}
		fc := prog.CmdString(prog.Point(ir.PointID(from)).Cmd)
		tc := prog.CmdString(prog.Point(ir.PointID(to)).Cmd)
		if fc == "a := 1" && tc == "b := a" {
			t.Errorf("killed definition still reaches use")
		}
		return true
	})
}

func TestPhiAtJoin(t *testing.T) {
	_, _, g := build(t, `
int a; int b;
int main() {
	if (input()) { a = 1; } else { a = 2; }
	b = a;
	return 0;
}
`, Options{})
	if len(g.Phis) == 0 {
		t.Fatal("no phi nodes placed at the join")
	}
}

func TestPhiAtLoopHeadWidens(t *testing.T) {
	prog, _, g := build(t, `
int main() {
	int i;
	for (i = 0; i < 10; i++) { }
	return i;
}
`, Options{})
	widenPhis := 0
	for i := range g.Phis {
		n := NodeID(g.PointCount + i)
		if g.Widen[n] {
			widenPhis++
		}
	}
	if widenPhis == 0 {
		t.Errorf("no widened phi at the loop head; phis: %v", g.Phis)
	}
	_ = prog
}

func TestBypassReducesDeepChains(t *testing.T) {
	src := `
int x; int g;
int h3() { g = x; return 0; }
int h2() { h3(); return 0; }
int h1() { h2(); return 0; }
int main() { x = 1; h1(); return 0; }
`
	_, _, gNo := build(t, src, Options{})
	prog, _, gYes := build(t, src, Options{Bypass: true})
	if gYes.EdgeCount >= gNo.EdgeCount {
		t.Errorf("bypass: edges %d -> %d (no reduction)", gNo.EdgeCount, gYes.EdgeCount)
	}
	if gYes.SplicedTriples == 0 {
		t.Error("bypass reported no splices")
	}
	// After bypass, x must have a direct edge from main's def into h3's use
	// (the entry/call relays of h1, h2 spliced away).
	lx := locOf(t, prog, "x")
	direct := false
	gYes.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
		if l != lx || g0IsPhi(gYes, from) || g0IsPhi(gYes, to) {
			return true
		}
		fc := prog.CmdString(prog.Point(ir.PointID(from)).Cmd)
		tc := prog.CmdString(prog.Point(ir.PointID(to)).Cmd)
		if fc == "x := 1" && tc == "g := x" {
			direct = true
		}
		return true
	})
	if !direct {
		t.Error("bypass did not create the direct main→h3 dependency")
	}
}

func g0IsPhi(g *Graph, n NodeID) bool { return g.IsPhi(n) }

func TestAvgDefUseSmall(t *testing.T) {
	_, _, g := build(t, `
int g;
int main() { int x; x = 1; g = x; return 0; }
`, Options{Bypass: true})
	d, u := g.AvgDefUse()
	if d <= 0 || u < 0 {
		t.Errorf("AvgDefUse = %v,%v", d, u)
	}
	if d > 5 || u > 5 {
		t.Errorf("tiny program has avg D=%v U=%v (should be small)", d, u)
	}
}

func TestDefUseChainsBuild(t *testing.T) {
	f, err := parser.Parse("t.c", `
int a; int b;
int main() { a = 1; a = 2; b = a; return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.File(f)
	if err != nil {
		t.Fatal(err)
	}
	pre := prean.Run(prog)
	g := BuildDefUseChains(prog, pre, Options{})
	la := locOf(t, prog, "a")
	// Strong kill still blocks in du-chain mode.
	g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
		if l != la {
			return true
		}
		fc := prog.CmdString(prog.Point(ir.PointID(from)).Cmd)
		tc := prog.CmdString(prog.Point(ir.PointID(to)).Cmd)
		if fc == "a := 1" && tc == "b := a" {
			t.Error("always-kill did not block du-chain")
		}
		return true
	})
	if len(g.Phis) != 0 {
		t.Error("du-chain graph must not contain phis")
	}
}

// TestExample5MayKillDifference reproduces the paper's Example 5 shape: a
// store through a pointer that the pre-analysis (flow-insensitively) says
// may hit {x,w} but flow-sensitively hits only x. Data dependencies treat
// the may-def as a use (blocking the stale chain); conventional def-use
// chains let the stale definition of x reach the later use directly.
func TestExample5MayKillDifference(t *testing.T) {
	src := `
int a; int b;
int *x; int *w;
int **p;
int main() {
	p = &w;      /* earlier target, makes pre-analysis pts(p) = {w,x} */
	p = &x;      /* flow-sensitively, pts(p) = {x} from here on */
	x = &a;      /* 10: x := &a */
	*p = &b;     /* 11: *p := &b — strong update of x at solve time   */
	w = x;       /* 12: use of x */
	return 0;
}
`
	f, err := parser.Parse("ex5.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.File(f)
	if err != nil {
		t.Fatal(err)
	}
	pre := prean.Run(prog)
	lx := locOf(t, prog, "x")

	// Sanity: the pre-analysis must see both targets for p.
	lp := locOf(t, prog, "p")
	if n := len(pre.Mem.Get(lp).Ptr()); n < 2 {
		t.Fatalf("pre-analysis pts(p) has %d targets, want 2", n)
	}

	edgeStaleToUse := func(g *Graph) bool {
		found := false
		g.Range(func(from NodeID, l ir.LocID, to NodeID) bool {
			if l != lx || g.IsPhi(from) || g.IsPhi(to) {
				return true
			}
			fc := prog.CmdString(prog.Point(ir.PointID(from)).Cmd)
			tc := prog.CmdString(prog.Point(ir.PointID(to)).Cmd)
			if fc == "x := &a" && tc == "w := x" {
				found = true
				return false
			}
			return true
		})
		return found
	}

	gData := Build(prog, pre, Options{})
	gChain := BuildDefUseChains(prog, pre, Options{})
	if edgeStaleToUse(gData) {
		t.Error("data dependencies leaked the stale definition across the may-kill")
	}
	if !edgeStaleToUse(gChain) {
		t.Error("def-use chains should carry the stale definition across the may-kill")
	}
}

func TestWriteDot(t *testing.T) {
	prog, _, g := build(t, `
int g;
int main() {
	int x;
	x = input();
	if (x > 0) { g = x; } else { g = 0; }
	return g;
}
`, Options{Bypass: true})
	var buf strings.Builder
	if err := g.WriteDot(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph dug", "cluster_", "φ(", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// Truncation marker with a tiny cap.
	buf.Reset()
	if err := g.WriteDot(&buf, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "more edges") {
		t.Error("truncation marker missing")
	}
	_ = prog
}
