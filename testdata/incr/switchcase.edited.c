/* A switch-driven classifier: fall-through cases, a default arm, and a
 * counter array indexed by the classification. The class is a join of
 * constants, so the guarded increment is provably in bounds. */
int counts[5];
int total;

int classify(int tag) {
	int cls;
	cls = 0;
	switch (tag % 5) {
	case 0:
		cls = 0;
		break;
	case 1:
	case 2:
		cls = 1;
		break;
	case 3:
		cls = 4;
		break;
	default:
		cls = 3;
	}
	return cls;
}

int main() {
	int i;
	int c;
	total = 0;
	for (i = 0; i < 30; i++) {
		c = classify(input());
		if (c >= 0 && c < 5) { counts[c] = counts[c] + 1; }
		total = total + 1;
	}
	return total;
}
