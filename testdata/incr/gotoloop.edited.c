/* A bounded retry loop built from a guarded backward goto — the loop has
 * no structured header, so widening happens at the label's join point.
 * The trace write is guarded, staying silent even after widening loses
 * the retry bound. */
int attempts;
int trace[6];

int acquire(int budget) {
	int tries;
	tries = 0;
retry:
	tries = tries + 1;
	attempts = attempts + 1;
	if (input() == 0 && tries < budget) {
		goto retry;
	}
	if (tries >= 0 && tries < 6) { trace[tries] = attempts; }
	return tries;
}

int main() {
	int r;
	attempts = 0;
	r = acquire(4);
	return r + attempts;
}
