/* Function-pointer dispatch: one pointer reassigned from input, three
 * handlers with distinct memory behavior. Exercises indirect-call
 * resolution (the pre-analysis must see all three callees) and the
 * clamped store in h_store, which stays in bounds even though acc itself
 * is unbounded. */
int acc;
int buf[8];

int h_add(int x) {
	acc = acc + x;
	return acc;
}

int h_sub(int x) {
	acc = acc - x - 1;
	return acc;
}

int h_store(int x) {
	int i;
	i = x;
	if (i < 0) { i = 0; }
	if (i > 7) { i = 7; }
	buf[i] = acc;
	return buf[i];
}

int (*op)(int);

int main() {
	int k;
	int t;
	acc = 0;
	op = h_add;
	for (k = 0; k < 40; k++) {
		t = input();
		if (t > 0) { op = h_add; }
		if (t < 0) { op = h_sub; }
		if (t == 0) { op = h_store; }
		op(t);
	}
	return acc;
}
