/* A bounded stack with push/pop and an overflow guard: the analyzers must
 * prove every access to the backing array safe. */
int stack[32];
int sp;

int push(int v) {
	if (sp >= 32) { return -1; }
	stack[sp] = v;
	sp++;
	return 0;
}

int pop() {
	if (sp <= 0) { return -1; }
	sp--;
	return stack[sp];
}

int main() {
	int i;
	int sum;
	sp = 0;
	sum = 0;
	for (i = 0; i < 40; i++) {
		push(i);        /* overflows are rejected by the guard */
	}
	for (i = 0; i < 40; i++) {
		sum = sum + pop();
	}
	return sum;
}
