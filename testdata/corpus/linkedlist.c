/* Heap-allocated singly linked list: allocation-site abstraction, struct
 * fields through pointers, and a traversal loop. */
struct node { int val; struct node *next; };

struct node *head;
int g;

void push_front(int v) {
	struct node *n;
	n = malloc(1);
	n->val = v;
	n->next = head;
	head = n;
}

int sum_list() {
	struct node *cur;
	int s;
	int guard;
	s = 0;
	guard = 0;
	cur = head;
	while (cur != 0 && guard < 1000) {
		s = s + cur->val;
		cur = cur->next;
		guard++;
	}
	return s;
}

int main() {
	int i;
	head = 0;
	for (i = 1; i <= 5; i++) {
		push_front(i * 10);
	}
	g = sum_list();
	return g;
}
