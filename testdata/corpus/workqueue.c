/* A heap-allocated work queue of struct jobs processed via a function
 * pointer table — exercises allocation sites, struct fields, and indirect
 * calls together. */
struct job { int kind; int payload; int result; };

struct job *slots[8];
int done;

int handle_add(int p) { return p + 1; }
int handle_mul(int p) { return p * 2; }
int handle_nop(int p) { return p; }

int (*handler)(int);

void submit(int i, int kind, int payload) {
	struct job *j;
	if (i < 0 || i >= 8) { return; }
	j = malloc(1);
	j->kind = kind;
	j->payload = payload;
	j->result = 0;
	slots[i] = j;
}

void drain() {
	int i;
	struct job *j;
	for (i = 0; i < 8; i++) {
		j = slots[i];
		if (j != 0) {
			if (j->kind == 0) { handler = handle_add; }
			if (j->kind == 1) { handler = handle_mul; }
			if (j->kind >= 2) { handler = handle_nop; }
			j->result = handler(j->payload);
			done = done + 1;
		}
	}
}

int main() {
	int i;
	done = 0;
	for (i = 0; i < 8; i++) {
		submit(i, input() % 3, input());
	}
	drain();
	return done;
}
