/* Insertion sort over a bounded array with guarded indices and a
 * verification pass. */
int a[12];
int sorted;

void sort() {
	int i; int j; int key;
	for (i = 1; i < 12; i++) {
		key = a[i];
		j = i - 1;
		while (j >= 0 && a[j] > key) {
			a[j + 1] = a[j];
			j = j - 1;
		}
		a[j + 1] = key;
	}
}

int check() {
	int i;
	for (i = 1; i < 12; i++) {
		if (a[i - 1] > a[i]) { return 0; }
	}
	return 1;
}

int main() {
	int i;
	for (i = 0; i < 12; i++) {
		a[i] = input() % 100;
	}
	sort();
	sorted = check();
	return sorted;
}
