/* Multi-dimensional arrays with flattened strides and nested loops. */
int m[4][4];
int v[4];
int out[4];

void fill() {
	int i; int j;
	for (i = 0; i < 4; i++) {
		for (j = 0; j < 4; j++) {
			m[i][j] = i * 4 + j;
		}
		v[i] = i + 1;
	}
}

void mul() {
	int i; int j; int s;
	for (i = 0; i < 4; i++) {
		s = 0;
		for (j = 0; j < 4; j++) {
			s = s + m[i][j] * v[j];
		}
		out[i] = s;
	}
}

int main() {
	fill();
	mul();
	return out[0] + out[3];
}
