/* Ring buffer with modular indices; exercises % and weak array updates. */
int buf[16];
int head;
int tail;
int count;

void put(int v) {
	if (count >= 16) { return; }
	buf[tail] = v;
	tail = (tail + 1) % 16;
	count++;
}

int get() {
	int v;
	if (count <= 0) { return -1; }
	v = buf[head];
	head = (head + 1) % 16;
	count--;
	return v;
}

int main() {
	int i;
	int acc;
	head = 0; tail = 0; count = 0; acc = 0;
	for (i = 0; i < 100; i++) {
		put(input());
		if (i % 3 == 0) { acc = acc + get(); }
	}
	while (count > 0) { acc = acc + get(); }
	return acc;
}
