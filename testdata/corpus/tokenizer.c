/* A small tokenizer-style state loop exercising switch (fallthrough and
 * default) and a backward goto. */
int counts[4];
int total;

int classify(int c) {
	switch (c) {
	case 32:
	case 9:
	case 10:
		return 0;        /* whitespace */
	case 40:
	case 41:
		return 1;        /* punctuation */
	case -1:
		return 3;        /* eof */
	default:
		if (c >= 48 && c <= 57) { return 2; }  /* digit */
		return 1;
	}
}

int main() {
	int i;
	int c;
	int k;
	i = 0;
	total = 0;
scan:
	c = input();
	if (i >= 200) { goto done; }
	i = i + 1;
	k = classify(c % 128);
	if (k >= 0 && k < 4) {
		counts[k] = counts[k] + 1;
	}
	total = total + 1;
	if (k != 3) { goto scan; }
done:
	return total;
}
