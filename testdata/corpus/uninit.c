/* Uninitialized-read corpus program: the BUG lines read locals that some
 * path leaves unassigned; everything else is initialized on every path and
 * must stay silent under the uninit checker (see corpus_test.go's per-kind
 * golden counts and the trapping-interpreter oracle). */
int g;

int scaled(int k) {
	int f;                       /* initialized on every path below */
	if (k > 0) { f = 2; } else { f = 3; }
	return k * f;
}

int pick() {
	int r;
	if (input() > 0) { r = 5; }
	return r;                    /* BUG: r unassigned when input() <= 0 */
}

int main() {
	int a;
	int b;
	int c;
	a = scaled(4);
	b = a + 1;                   /* a, b: fully initialized */
	g = b + c;                   /* BUG: c never assigned */
	g = g + pick();
	return g;
}
