/* Bit manipulation: masks, shifts, and a popcount loop. */
int g;

int popcount(int x) {
	int n;
	int guard;
	n = 0;
	guard = 0;
	while (x != 0 && guard < 64) {
		n = n + (x & 1);
		x = x >> 1;
		guard++;
	}
	return n;
}

int main() {
	int v;
	int flags;
	v = input();
	flags = (v & 0xFF) | 0x10;
	g = popcount(flags) + ((flags ^ 0x0F) & 7);
	return g;
}
