/* A dispatcher-driven state machine: function pointers select per-state
 * handlers, exercising call-graph resolution by the pre-analysis. */
int state;
int steps;

int to_idle(int ev);
int to_run(int ev);
int to_done(int ev);

int (*handler)(int);

int to_idle(int ev) {
	state = 0;
	if (ev > 0) { handler = to_run; }
	return state;
}

int to_run(int ev) {
	state = 1;
	steps = steps + 1;
	if (ev < 0) { handler = to_idle; }
	if (steps > 10) { handler = to_done; }
	return state;
}

int to_done(int ev) {
	state = 2;
	return state;
}

int main() {
	int i;
	state = 0;
	steps = 0;
	handler = to_idle;
	for (i = 0; i < 50; i++) {
		handler(input());
	}
	return state;
}
