/* Deliberate bugs: each BUG line must be reported by the checkers, and
 * every other access must stay silent (see corpus_test.go's golden alarm
 * count). */
int small[4];
int big[64];
int g;

void safe_fill() {
	int i;
	for (i = 0; i < 64; i++) { big[i] = i; }
}

void off_by_one() {
	int i;
	for (i = 0; i <= 4; i++) {
		small[i] = 0;            /* BUG: small[4] */
	}
}

void unchecked_index(int k) {
	small[k] = 7;                /* BUG: k unconstrained */
}

void null_write() {
	int *p;
	p = 0;
	*p = 3;                      /* BUG: null dereference */
}

int main() {
	safe_fill();
	off_by_one();
	unchecked_index(input());
	null_write();
	g = big[10] + small[1];
	return g;
}
