// Relational precision: the packed octagon analyzer (Section 4) tracks
// relations like y == x + 1 that the interval domain cannot, refuting
// branches the interval analyzer must consider live.
package main

import (
	"fmt"
	"log"

	"sparrow"
)

const src = `
int g;

int main() {
	int x; int y;
	x = input();
	g = 0;
	if (x >= 0 && x <= 100) {
		y = x + 1;              /* octagon learns y - x == 1 */
		if (y > 100) {
			/* here x must be exactly 100 */
			if (x < 100) {
				g = 1;          /* octagon proves this dead */
			} else {
				g = 2;
			}
		}
	}
	return g;
}
`

func main() {
	for _, domain := range []sparrow.Domain{sparrow.Interval, sparrow.Octagon} {
		res, err := sparrow.AnalyzeSource("relational.c", src, sparrow.Options{
			Domain: domain,
			Mode:   sparrow.Sparse,
		})
		if err != nil {
			log.Fatal(err)
		}
		iv, _ := res.GlobalAtExit("g")
		fmt.Printf("== %v/sparse ==\n", domain)
		fmt.Printf("g at exit: %s\n", iv)
		if domain == sparrow.Octagon {
			fmt.Printf("packs: %d (avg non-singleton size %.1f)\n",
				res.Stats.PackCount, res.Stats.PackAvg)
			fmt.Println("the octagon excludes g == 1: the dead branch is refuted")
		} else {
			fmt.Println("intervals cannot relate y to x, so g == 1 stays possible")
		}
	}
}
