// Buffer-overrun detection: the motivating application of the paper's
// analyzers (Sparrow is an error-detection tool). The analyzer proves the
// safe loops silent and flags the off-by-one and the unchecked index, and —
// the paper's point — the sparse analyzer reports exactly the same alarms
// as the dense localized analyzer it was derived from, only faster.
package main

import (
	"fmt"
	"log"

	"sparrow"
)

const src = `
int table[16];
int heap_demo;

void fill_safe() {
	int i;
	for (i = 0; i < 16; i++) {
		table[i] = i * i;
	}
}

void off_by_one() {
	int i;
	for (i = 0; i <= 16; i++) {   /* BUG: writes table[16] */
		table[i] = 0;
	}
}

void unchecked(int idx) {
	table[idx] = 7;               /* BUG: idx unconstrained */
}

void heap_ok() {
	int *p;
	int i;
	p = malloc(8);
	for (i = 0; i < 8; i++) {
		p[i] = i;
	}
	heap_demo = p[3];
}

int main() {
	fill_safe();
	off_by_one();
	unchecked(input());
	heap_ok();
	return 0;
}
`

func main() {
	for _, mode := range []sparrow.Mode{sparrow.Base, sparrow.Sparse} {
		res, err := sparrow.AnalyzeSource("overrun.c", src, sparrow.Options{
			Domain: sparrow.Interval,
			Mode:   mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		alarms := res.Alarms()
		fmt.Printf("== %v analyzer: %d alarms in %v ==\n", mode, len(alarms), res.Stats.TotalTime)
		for _, a := range alarms {
			fmt.Println(" ", a)
		}
	}
}
