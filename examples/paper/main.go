// Paper walkthrough: replay the running example of Sections 2.5–2.8
// (Examples 1–5) — definition/use sets, data dependencies, and the
// precision difference against conventional def-use chains — on the
// pointer program
//
//	10: x := &y;   11: *p := &z;   12: w := x;
//
// with p pointing to {x, w} according to the pre-analysis (the paper uses
// {x, y}; the shape is identical). The store at 11 *may* strongly update x,
// so the data dependency treats 11 as both a definition and a use of x and
// routes 10's value through it, while conventional def-use chains let 10
// reach 12 directly — Example 5's precision loss.
package main

import (
	"fmt"
	"log"
	"sort"

	"sparrow/internal/dug"
	"sparrow/internal/frontend/lower"
	"sparrow/internal/frontend/parser"
	"sparrow/internal/ir"
	"sparrow/internal/prean"
)

const src = `
int a; int b;
int *x; int *w;
int **p;
int main() {
	p = &w;      /* flow-insensitively, pts(p) = {w, x} */
	p = &x;      /* flow-sensitively,   pts(p) = {x}    */
	x = &a;      /* "10": x := &a                        */
	*p = &b;     /* "11": *p := &b                       */
	w = x;       /* "12": use of x                       */
	return 0;
}
`

func main() {
	f, err := parser.Parse("example.c", src)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lower.File(f)
	if err != nil {
		log.Fatal(err)
	}
	pre := prean.Run(prog)

	fmt.Println("== pre-analysis (flow-insensitive T̂pre) ==")
	lp, _ := prog.Locs.Lookup(ir.Loc{Kind: ir.LVar, Proc: ir.None, Name: "p"})
	fmt.Printf("pts(p) = {")
	for i, t := range pre.Mem.Get(lp).Ptr() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(prog.Locs.String(t.Loc))
	}
	fmt.Println("}   (over-approximates the flow-sensitive {x})")

	fmt.Println("\n== D̂(c) and Û(c) (Definitions 1, 2 via Section 3.2) ==")
	srcIface := dug.IntervalSource(prog, pre)
	main := prog.ProcByName("main")
	for _, id := range main.Points {
		pt := prog.Point(id)
		defs, uses := srcIface.DefsUsesAppend(pt, nil, nil)
		defs, uses = ir.DedupLocs(defs), ir.DedupLocs(uses)
		if len(defs) == 0 && len(uses) == 0 {
			continue
		}
		fmt.Printf("  %-22s D̂=%-12v Û=%v\n",
			prog.CmdString(pt.Cmd), names(prog, defs), names(prog, uses))
	}

	fmt.Println("\n== data dependencies (Definition 3/4) ==")
	gData := dug.Build(prog, pre, dug.Options{})
	printDeps(prog, gData, "x")
	fmt.Println("\n== conventional def-use chains (Section 2.6) ==")
	gChain := dug.BuildDefUseChains(prog, pre, dug.Options{})
	printDeps(prog, gChain, "x")

	fmt.Println("\nNote the extra chain   x := &a  -(x)->  w := x :")
	fmt.Println("the may-kill at *p := &b does not block a def-use chain, so the")
	fmt.Println("stale &a joins the value at 12 — the Example 5 precision loss that")
	fmt.Println("the paper's data dependencies avoid (11 is a use of x instead).")
}

func names(prog *ir.Program, locs []ir.LocID) []string {
	out := make([]string, len(locs))
	for i, l := range locs {
		out[i] = prog.Locs.String(l)
	}
	sort.Strings(out)
	return out
}

// printDeps lists the dependency triples of main on the named global.
func printDeps(prog *ir.Program, g *dug.Graph, global string) {
	target, _ := prog.Locs.Lookup(ir.Loc{Kind: ir.LVar, Proc: ir.None, Name: global})
	mainID := prog.ProcByName("main").ID
	var lines []string
	g.Range(func(from dug.NodeID, l ir.LocID, to dug.NodeID) bool {
		if l != target {
			return true
		}
		fp, tp := nodeDesc(prog, g, from), nodeDesc(prog, g, to)
		if fp.proc != mainID && tp.proc != mainID {
			return true
		}
		lines = append(lines, fmt.Sprintf("  %-22s -(%s)-> %s", fp.label, global, tp.label))
		return true
	})
	sort.Strings(lines)
	for _, ln := range lines {
		fmt.Println(ln)
	}
}

type nodeInfo struct {
	proc  ir.ProcID
	label string
}

func nodeDesc(prog *ir.Program, g *dug.Graph, n dug.NodeID) nodeInfo {
	if g.IsPhi(n) {
		ph := g.PhiOf(n)
		return nodeInfo{prog.Point(ph.At).Proc, fmt.Sprintf("φ(%s)", prog.Locs.String(ph.Loc))}
	}
	pt := prog.Point(ir.PointID(n))
	return nodeInfo{pt.Proc, prog.CmdString(pt.Cmd)}
}
