// Modes: run the same program through the three fixpoint strategies —
// vanilla dense, access-localized dense, and sparse — and compare cost
// while the sparse result provably matches the localized one (Lemma 2).
// This is Table 2 in miniature, on a generated benchmark.
package main

import (
	"fmt"
	"log"

	"sparrow"
	"sparrow/internal/cgen"
)

func main() {
	src := cgen.Generate(cgen.Default(77, 800))
	fmt.Printf("generated benchmark: %d bytes of C\n\n", len(src))

	type row struct {
		mode  sparrow.Mode
		stats sparrow.Stats
	}
	var rows []row
	for _, mode := range []sparrow.Mode{sparrow.Vanilla, sparrow.Base, sparrow.Sparse} {
		res, err := sparrow.AnalyzeSource("bench.c", src, sparrow.Options{
			Domain: sparrow.Interval,
			Mode:   mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{mode, res.Stats})
	}

	fmt.Printf("%-8s %12s %10s %10s\n", "mode", "total", "steps", "dep-edges")
	for _, r := range rows {
		fmt.Printf("%-8v %12v %10d %10d\n", r.mode, r.stats.TotalTime.Round(10), r.stats.Steps, r.stats.DepEdges)
	}
	van, bas, sp := rows[0].stats, rows[1].stats, rows[2].stats
	if bas.TotalTime > 0 {
		fmt.Printf("\nspeedup base over vanilla: %.1fx\n",
			van.TotalTime.Seconds()/bas.TotalTime.Seconds())
	}
	if sp.TotalTime > 0 {
		fmt.Printf("speedup sparse over base:  %.1fx\n",
			bas.TotalTime.Seconds()/sp.TotalTime.Seconds())
	}
	fmt.Printf("sparsity: avg |D̂(c)| = %.2f, avg |Û(c)| = %.2f per statement\n",
		sp.AvgDefs, sp.AvgUses)
}
