// Quickstart: analyze a small C program with the sparse interval analyzer
// and inspect the inferred invariants and alarms.
package main

import (
	"fmt"
	"log"

	"sparrow"
)

const src = `
int total;
int limit = 100;

int clamp(int v) {
	if (v > limit) { return limit; }
	if (v < 0) { return 0; }
	return v;
}

int main() {
	int i;
	total = 0;
	for (i = 0; i < 10; i++) {
		total = total + clamp(input());
	}
	return total;
}
`

func main() {
	res, err := sparrow.AnalyzeSource("quickstart.c", src, sparrow.Options{
		Domain: sparrow.Interval,
		Mode:   sparrow.Sparse,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== quickstart ==")
	fmt.Printf("analyzed %d statements in %v (%d solver steps)\n",
		res.Stats.Statements, res.Stats.TotalTime, res.Stats.Steps)
	fmt.Printf("dependency graph: %d edges, %d phis, avg |D̂(c)| = %.2f\n",
		res.Stats.DepEdges, res.Stats.Phis, res.Stats.AvgDefs)

	// The analyzer proves clamp returns [0,100] and total stays >= 0 (the
	// ascending accumulation is widened to [0,+oo); limit stays exactly 100).
	for _, g := range []string{"total", "limit"} {
		if iv, ok := res.GlobalAtExit(g); ok {
			fmt.Printf("final %-6s = %s\n", g, iv)
		}
	}

	if alarms := res.Alarms(); len(alarms) == 0 {
		fmt.Println("no alarms: every memory access is provably safe")
	} else {
		for _, a := range alarms {
			fmt.Println("alarm:", a)
		}
	}
}
