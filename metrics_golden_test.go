package sparrow_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sparrow"
	"sparrow/internal/check"
	"sparrow/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metrics reports")

// goldenPrograms are the corpus members whose full counter sections are
// pinned: they cover the frontend features most likely to disturb the
// counters (function-pointer dispatch, switch lowering, goto loops) plus
// the uninitialized-read program, whose golden exercises the per-kind
// alarm and restricted-graph counters.
var goldenPrograms = []string{"fpdispatch", "switchcase", "gotoloop", "uninit"}

// goldenReport is the committed shape: configuration stamp + the complete
// deterministic counter section. Timings and heap are omitted by design.
type goldenReport struct {
	Schema   int              `json:"schema"`
	Program  string           `json:"program"`
	Domain   string           `json:"domain"`
	Mode     string           `json:"mode"`
	Workers  int              `json:"workers"`
	Counters map[string]int64 `json:"counters"`
}

func collectGolden(t *testing.T, name string) goldenReport {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "corpus", name+".c"))
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.New()
	res, err := sparrow.AnalyzeSource(name+".c", string(src), sparrow.Options{
		Domain:   sparrow.Interval,
		Mode:     sparrow.Sparse,
		Workers:  1,
		Metrics:  col,
		Checkers: check.AllKinds,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Alarms()
	// Per-checker restricted solves fill the restr_* size counters.
	for _, k := range check.AllKinds {
		if _, err := res.AnalyzeChecker(k); err != nil {
			t.Fatal(err)
		}
	}
	rep := res.MetricsReport()
	return goldenReport{
		Schema:   rep.Schema,
		Program:  name,
		Domain:   rep.Domain,
		Mode:     rep.Mode,
		Workers:  rep.Workers,
		Counters: rep.Counters,
	}
}

// TestMetricsGolden pins the complete counter section of the sparse
// interval analyzer on three corpus programs. A diff here means the
// engine's work profile changed: either fix the regression or, if the
// change is intended, regenerate with `go test -run TestMetricsGolden
// -update .` and review the counter movement in the diff.
func TestMetricsGolden(t *testing.T) {
	for _, name := range goldenPrograms {
		t.Run(name, func(t *testing.T) {
			got := collectGolden(t, name)
			path := filepath.Join("testdata", "golden", "metrics", name+".json")
			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (regenerate with -update): %v", err)
			}
			var want goldenReport
			if err := json.Unmarshal(b, &want); err != nil {
				t.Fatal(err)
			}
			if got.Schema != want.Schema || got.Domain != want.Domain || got.Mode != want.Mode || got.Workers != want.Workers {
				t.Errorf("stamp drift: got %+v, want %+v", got, want)
			}
			if !reflect.DeepEqual(got.Counters, want.Counters) {
				for k, v := range want.Counters {
					if got.Counters[k] != v {
						t.Errorf("counter %s: got %d, want %d", k, got.Counters[k], v)
					}
				}
				for k, v := range got.Counters {
					if _, ok := want.Counters[k]; !ok {
						t.Errorf("counter %s=%d not in golden file (regenerate with -update)", k, v)
					}
				}
			}
		})
	}
}
